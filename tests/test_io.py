"""Dataset I/O round-trip tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datamodel import Particles
from repro.io import read_set_from_file, write_set_to_file
from repro.units import units


@pytest.fixture
def stars():
    p = Particles(5)
    p.mass = np.linspace(1.0, 5.0, 5) | units.MSun
    p.position = np.arange(15.0).reshape(5, 3) | units.parsec
    p.velocity = np.ones((5, 3)) | units.kms
    p.stellar_type = np.array([1.0, 1, 3, 13, 14])
    return p


@pytest.mark.parametrize("fmt,suffix", [
    ("amuse-txt", "snap.amuse"),
    ("npz", "snap.npz"),
])
class TestRoundTrip:
    def test_attributes_survive(self, stars, tmp_path, fmt, suffix):
        path = tmp_path / suffix
        write_set_to_file(stars, path, format=fmt)
        back = read_set_from_file(path, format=fmt)
        assert back.attribute_names() == stars.attribute_names()
        assert np.allclose(
            back.mass.value_in(units.MSun),
            stars.mass.value_in(units.MSun),
        )
        assert np.allclose(
            back.position.value_in(units.parsec),
            stars.position.value_in(units.parsec),
        )

    def test_keys_preserved_for_channels(self, stars, tmp_path, fmt,
                                         suffix):
        path = tmp_path / suffix
        write_set_to_file(stars, path, format=fmt)
        back = read_set_from_file(path, format=fmt)
        assert np.array_equal(back.key, stars.key)
        # a channel between the restored and original set still works
        back.mass = back.mass * 2.0
        back.new_channel_to(stars).copy_attributes(["mass"])
        assert stars.mass.value_in(units.MSun)[0] == pytest.approx(2.0)

    def test_units_exact(self, stars, tmp_path, fmt, suffix):
        path = tmp_path / suffix
        write_set_to_file(stars, path, format=fmt)
        back = read_set_from_file(path, format=fmt)
        assert back.mass.unit.powers == stars.mass.unit.powers
        assert back.mass.unit.factor == pytest.approx(
            stars.mass.unit.factor
        )

    def test_unitless_attributes(self, stars, tmp_path, fmt, suffix):
        path = tmp_path / suffix
        write_set_to_file(stars, path, format=fmt)
        back = read_set_from_file(path, format=fmt)
        assert np.array_equal(back.stellar_type, stars.stellar_type)
        assert not isinstance(
            back.stellar_type, type(back.mass)
        )


class TestTextFormat:
    def test_header_is_self_describing(self, stars, tmp_path):
        path = tmp_path / "s.amuse"
        write_set_to_file(stars, path, format="amuse-txt")
        lines = path.read_text().splitlines()
        assert lines[0] == "#amuse-repro-1"
        assert "mass" in lines[1]

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.amuse"
        path.write_text("not a snapshot\n")
        with pytest.raises(ValueError):
            read_set_from_file(path, format="amuse-txt")

    def test_unknown_format(self, stars, tmp_path):
        with pytest.raises(ValueError):
            write_set_to_file(stars, tmp_path / "x", format="hdf9")
        with pytest.raises(ValueError):
            read_set_from_file(tmp_path / "x", format="hdf9")

    def test_empty_set(self, tmp_path):
        empty = Particles(0)
        path = tmp_path / "empty.amuse"
        write_set_to_file(empty, path, format="amuse-txt")
        back = read_set_from_file(path, format="amuse-txt")
        assert len(back) == 0


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e6),
            min_size=1, max_size=30,
        )
    )
    def test_text_round_trip_precision(self, masses):
        import tempfile
        from pathlib import Path

        p = Particles(len(masses))
        p.mass = np.array(masses) | units.MSun
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prop.amuse"
            write_set_to_file(p, path, format="amuse-txt")
            back = read_set_from_file(path, format="amuse-txt")
        assert np.allclose(
            back.mass.value_in(units.MSun), masses, rtol=1e-15
        )


class TestSimulationSnapshot:
    def test_snapshot_of_live_simulation(self, tmp_path):
        """Snapshot a running coupled simulation and restore it."""
        from repro.coupling import EmbeddedClusterSimulation

        sim = EmbeddedClusterSimulation(
            n_stars=8, n_gas=32, rng=9, bridge_timestep_myr=0.05
        )
        sim.evolve_one_iteration()
        gas = sim.hydro.particles
        path = tmp_path / "gas.npz"
        write_set_to_file(gas, path, format="npz")
        restored = read_set_from_file(path, format="npz")
        assert np.array_equal(
            restored.position.number, gas.position.number
        )
        assert np.array_equal(restored.u.number, gas.u.number)
        sim.stop()
