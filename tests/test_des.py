"""Discrete-event simulation kernel tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.jungle.des import (
    Environment,
    Interrupt,
    SlotResource,
    Store,
    all_of,
    any_of,
)


class TestEventsAndTime:
    def test_timeout_value_and_clock(self):
        env = Environment()

        def proc(env):
            value = yield env.timeout(2.5, value="tick")
            return (value, env.now)

        p = env.process(proc(env))
        assert env.run_until_complete(p) == ("tick", 2.5)

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_equal_time_fifo_order(self):
        env = Environment()
        log = []

        def proc(env, name):
            yield env.timeout(1.0)
            log.append(name)

        for name in "abc":
            env.process(proc(env, name))
        env.run()
        assert log == ["a", "b", "c"]

    def test_run_until_limit(self):
        env = Environment()

        def proc(env):
            yield env.timeout(100.0)

        env.process(proc(env))
        env.run(until=5.0)
        assert env.now == 5.0

    def test_event_fail_propagates(self):
        env = Environment()
        evt = env.event()

        def proc(env):
            yield evt

        p = env.process(proc(env))
        evt.fail(RuntimeError("nope"))
        with pytest.raises(RuntimeError, match="nope"):
            env.run_until_complete(p)

    def test_event_double_trigger_rejected(self):
        env = Environment()
        evt = env.event()
        evt.succeed(1)
        with pytest.raises(RuntimeError):
            evt.succeed(2)

    def test_process_exception_captured(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1.0)
            raise KeyError("inside")

        p = env.process(proc(env))
        with pytest.raises(KeyError):
            env.run_until_complete(p)

    def test_process_must_yield_events(self):
        env = Environment()

        def proc(env):
            yield 42

        env.process(proc(env))
        with pytest.raises(TypeError):
            env.run()

    def test_nested_processes(self):
        env = Environment()

        def inner(env):
            yield env.timeout(3.0)
            return "inner-done"

        def outer(env):
            result = yield env.process(inner(env))
            return result + "!"

        p = env.process(outer(env))
        assert env.run_until_complete(p) == "inner-done!"


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def victim(env):
            try:
                yield env.timeout(100.0)
                return "survived"
            except Interrupt as interrupt:
                return ("interrupted", interrupt.cause, env.now)

        v = env.process(victim(env))

        def killer(env):
            yield env.timeout(4.0)
            v.interrupt("power cut")

        env.process(killer(env))
        env.run()
        assert v.value == ("interrupted", "power cut", 4.0)

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1.0)
            return "done"

        p = env.process(quick(env))
        env.run()
        p.interrupt("late")
        env.run()
        assert p.value == "done"


class TestStore:
    def test_fifo(self):
        env = Environment()
        store = Store(env)
        results = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                results.append(item)

        env.process(consumer(env))
        for i in range(3):
            store.put(i)
        env.run()
        assert results == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)

        def consumer(env):
            item = yield store.get()
            return (item, env.now)

        def producer(env):
            yield env.timeout(7.0)
            store.put("late")

        c = env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert c.value == ("late", 7.0)


class TestSlotResource:
    def test_capacity_respected(self):
        env = Environment()
        slots = SlotResource(env, 1)
        order = []

        def job(env, name):
            yield slots.request()
            order.append((name, env.now))
            yield env.timeout(10.0)
            slots.release()

        env.process(job(env, "first"))
        env.process(job(env, "second"))
        env.run()
        assert order == [("first", 0.0), ("second", 10.0)]

    def test_release_without_request(self):
        env = Environment()
        slots = SlotResource(env, 1)
        with pytest.raises(RuntimeError):
            slots.release()

    def test_queued_count(self):
        env = Environment()
        slots = SlotResource(env, 1)

        def holder(env):
            yield slots.request()
            yield env.timeout(5.0)
            slots.release()

        def waiter(env):
            yield slots.request()
            slots.release()

        env.process(holder(env))
        env.process(waiter(env))
        env.run(until=1.0)
        assert slots.queued == 1


class TestComposites:
    def test_all_of(self):
        env = Environment()
        events = [env.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        gate = all_of(env, events)

        def proc(env):
            values = yield gate
            return (values, env.now)

        p = env.process(proc(env))
        assert env.run_until_complete(p) == ([3.0, 1.0, 2.0], 3.0)

    def test_any_of(self):
        env = Environment()
        events = [env.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]

        def proc(env):
            value = yield any_of(env, events)
            return (value, env.now)

        p = env.process(proc(env))
        assert env.run_until_complete(p) == (1.0, 1.0)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1, max_size=20,
        )
    )
    def test_completion_times_sorted(self, delays):
        env = Environment()
        completions = []

        def proc(env, delay):
            yield env.timeout(delay)
            completions.append(env.now)

        for delay in delays:
            env.process(proc(env, delay))
        env.run()
        assert completions == sorted(completions)
        assert len(completions) == len(delays)

    @given(st.integers(min_value=1, max_value=20))
    def test_repeat_runs_identical(self, n):
        def build():
            env = Environment()
            log = []

            def proc(env, i):
                yield env.timeout(i % 5)
                log.append((env.now, i))

            for i in range(n):
                env.process(proc(env, i))
            env.run()
            return log

        assert build() == build()
