"""Async-first API: futures, EvolveGroup, eager state guards, shim.

Covers the PR-2 redesign: unit-aware futures over the RPC pending
table, the ``m.async_(...)`` method surface, the in-flight transition
tracking that raises :class:`CodeStateError` eagerly on illegal
overlaps, the :class:`EvolveGroup` scheduler, and the aggregate-error /
timeout semantics of ``wait_all``.
"""

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cesm import EarthSystemModel
from repro.codes import EvolveGroup, PhiGRAPE, SSE
from repro.codes.base import CodeStateError, InflightTracker
from repro.codes.testing import SleepCode
from repro.distributed import JungleRunner
from repro.ic import new_plummer_model
from repro.jungle import make_lab_jungle
from repro.rpc import (
    AggregateRequestError,
    AsyncRequest,
    Future,
    QuantityFuture,
    as_completed,
    wait_all,
)
from repro.units import Quantity, nbody_system, units


@pytest.fixture
def converter():
    return nbody_system.nbody_to_si(
        1000.0 | units.MSun, 1.0 | units.parsec
    )


@pytest.fixture
def stars(converter):
    return new_plummer_model(24, convert_nbody=converter, rng=0)


def _resolved(value):
    request = AsyncRequest()
    request._resolve(value)
    return request


class TestFuture:
    def test_transform_runs_lazily_in_joining_thread(self):
        request = AsyncRequest()
        seen = []
        future = Future(request, transform=lambda v: (
            seen.append(threading.get_ident()), v * 2)[1])
        resolver = threading.Thread(target=request._resolve, args=(21,))
        resolver.start()
        resolver.join()
        assert future.done()
        assert seen == []                      # not yet materialized
        assert future.result() == 42
        assert seen == [threading.get_ident()]  # ran HERE, not resolver

    def test_transform_runs_exactly_once(self):
        calls = []
        future = Future(_resolved(1), transform=lambda v: (
            calls.append(v), v)[1])
        assert future.result() == future.result() == 1
        assert calls == [1]

    def test_cleanup_runs_on_success_and_failure(self):
        done = []
        ok = Future(_resolved(1), cleanup=lambda: done.append("ok"))
        ok.result()
        bad = Future(
            _resolved(1), transform=lambda v: 1 / 0,
            cleanup=lambda: done.append("bad"),
        )
        with pytest.raises(ZeroDivisionError):
            bad.result()
        assert done == ["ok", "bad"]

    def test_multi_request_future(self):
        requests = [_resolved(i) for i in range(3)]
        future = Future(requests=requests, transform=sum)
        assert future.result() == 3

    def test_add_done_callback(self):
        request = AsyncRequest()
        future = Future(request)
        fired = []
        future.add_done_callback(fired.append)
        assert fired == []
        request._resolve("x")
        assert fired == [future]
        # late registration fires immediately
        future.add_done_callback(fired.append)
        assert fired == [future, future]

    def test_empty_multi_future_fires_callback(self):
        future = Future(requests=[], transform=lambda values: values)
        assert future.done()
        fired = []
        future.add_done_callback(fired.append)
        assert fired == [future]
        assert future.result() == []

    def test_abandon_retires_cleanup_without_transform(self):
        request = AsyncRequest()
        ran = []
        future = Future(
            request,
            transform=lambda v: ran.append("transform"),
            cleanup=lambda: ran.append("cleanup"),
            description="slow.evolve_model",
        )
        future.abandon()
        assert ran == []            # nothing until the response lands
        request._resolve(1)
        assert ran == ["cleanup"]   # transform skipped, cleanup ran
        with pytest.raises(RuntimeError, match="abandoned"):
            future.result()

    def test_abandon_never_blocks_on_running_transform(self):
        """abandon()'s discard runs on channel reader threads, so it
        must return immediately while a joiner's transform (which may
        do channel I/O serviced by that same reader) is running —
        otherwise reader and joiner deadlock on each other."""
        request = AsyncRequest()
        gate = threading.Event()
        started = threading.Event()

        def slow_transform(value):
            started.set()
            assert gate.wait(5)
            return value

        future = Future(request, transform=slow_transform,
                        description="slow")
        request._resolve(1)
        joiner = threading.Thread(target=future.result)
        joiner.start()
        assert started.wait(5)
        t0 = time.monotonic()
        future.abandon()                     # must NOT wait for gate
        assert time.monotonic() - t0 < 1.0
        gate.set()
        joiner.join(5)
        assert future.result() == 1          # the earlier join won

    def test_result_timeout_bounded_during_foreign_materialization(
            self):
        """result(timeout) must honor its deadline even when another
        thread has claimed the materialization and its transform is
        still running."""
        request = AsyncRequest()
        gate = threading.Event()
        started = threading.Event()

        def slow_transform(value):
            started.set()
            assert gate.wait(5)
            return value

        future = Future(request, transform=slow_transform)
        request._resolve(1)
        joiner = threading.Thread(target=future.result)
        joiner.start()
        assert started.wait(5)
        with pytest.raises(TimeoutError, match="materialized"):
            future.result(timeout=0.05)
        gate.set()
        joiner.join(5)
        assert future.result() == 1

    def test_raising_done_callback_does_not_kill_resolver(self):
        request = AsyncRequest()
        fired = []
        request.add_done_callback(lambda r: 1 / 0)
        request.add_done_callback(fired.append)
        request._resolve(7)         # must not raise out of _resolve
        assert fired == [request]   # later callbacks still ran
        assert request.result() == 7

    def test_submit_offloads_to_thread(self):
        main = threading.get_ident()
        future = Future.submit(threading.get_ident)
        assert future.result(timeout=5) != main

    def test_submit_pool_runs_tasks_concurrently(self):
        # a barrier only releases if both tasks run at the same time
        barrier = threading.Barrier(2, timeout=5)
        futures = [Future.submit(barrier.wait) for _ in range(2)]
        wait_all(futures, timeout=10)

    def test_submit_delivers_errors(self):
        def boom():
            raise ValueError("offload failed")

        with pytest.raises(ValueError, match="offload failed"):
            Future.submit(boom).result(timeout=5)

    def test_exception_accessor(self):
        future = Future.failed(ValueError("nope"))
        assert isinstance(future.exception(), ValueError)
        assert Future.completed(1).exception() is None

    def test_quantity_future_value_in(self):
        future = QuantityFuture(
            _resolved(2.0),
            transform=lambda v: Quantity(v, units.parsec),
        )
        assert future.value_in(units.parsec) == pytest.approx(2.0)


class TestWaitAll:
    def test_results_in_order(self):
        assert wait_all(
            [Future.completed(i) for i in range(4)]
        ) == [0, 1, 2, 3]

    def test_timeout_names_pending_calls(self):
        pending = Future(description="slow.evolve_model")
        done = Future.completed(1)
        with pytest.raises(TimeoutError, match="slow.evolve_model"):
            wait_all([done, pending], timeout=0.05)

    def test_timeout_retires_all_cleanups(self):
        """On deadline expiry no cleanup hook may strand: resolved
        futures are joined, pending ones abandoned (retiring when the
        response eventually lands)."""
        retired = []
        pending = Future(cleanup=lambda: retired.append("pending"),
                         description="slow")
        done = Future(_resolved(1),
                      cleanup=lambda: retired.append("done"))
        with pytest.raises(TimeoutError):
            wait_all([done, pending], timeout=0.05)
        assert "done" in retired
        pending._requests[0]._resolve(2)   # the response finally lands
        assert "pending" in retired

    def test_aggregate_error_names_each_failure(self):
        futures = [
            Future.completed(1),
            Future.failed(ValueError("kapow"), description="A.evolve"),
            Future.failed(RuntimeError("bang"), description="B.kick"),
        ]
        with pytest.raises(AggregateRequestError) as err:
            wait_all(futures)
        message = str(err.value)
        assert "A.evolve" in message and "B.kick" in message
        assert "2 of 3" in message
        assert len(err.value.failures) == 2

    def test_aggregate_error_joins_everything_first(self):
        # cleanups of NON-failing futures must run even when a sibling
        # fails — no stranded in-flight transitions
        done = []
        futures = [
            Future.failed(ValueError("x"),
                          description="first fails"),
            Future(_resolved(1), cleanup=lambda: done.append("ran")),
        ]
        with pytest.raises(AggregateRequestError):
            wait_all(futures)
        assert done == ["ran"]

    def test_call_raised_timeout_is_failure_not_deadline(self):
        """A TimeoutError raised BY a call (e.g. a nested timed wait
        in a transform) is an ordinary failure — it must be aggregated
        and must not strand the remaining joins."""
        def inner_timeout(_value):
            raise TimeoutError("inner wait expired")

        done = []
        futures = [
            Future(_resolved(1), transform=inner_timeout,
                   description="hung.pull"),
            Future(_resolved(2), cleanup=lambda: done.append("ran")),
        ]
        with pytest.raises(AggregateRequestError,
                           match="inner wait expired"):
            wait_all(futures)
        assert done == ["ran"]

    def test_mixed_raw_requests_and_futures(self):
        assert wait_all([_resolved(1), Future.completed(2)]) == [1, 2]


class TestAsCompleted:
    def test_yields_in_completion_order(self):
        slow, fast = AsyncRequest(), AsyncRequest()
        futures = [Future(slow, description="slow"),
                   Future(fast, description="fast")]
        fast._resolve("f")
        iterator = as_completed(futures, timeout=5)
        first = next(iterator)
        assert first.description == "fast"
        slow._resolve("s")
        assert next(iterator).description == "slow"

    def test_timeout(self):
        with pytest.raises(TimeoutError):
            list(as_completed([Future()], timeout=0.05))


class TestAsyncMethodSurface:
    def test_sync_is_shim_over_async(self, converter, stars):
        """The blocking call and async_().result() produce identical
        trajectories — every legacy test doubles as a shim test."""
        results = []
        for use_async in (False, True):
            grav = PhiGRAPE(converter, eta=0.05)
            grav.add_particles(stars)
            if use_async:
                grav.evolve_model.async_(0.05 | units.Myr).result()
            else:
                grav.evolve_model(0.05 | units.Myr)
            results.append(
                grav.particles.position.value_in(units.m).copy()
            )
            grav.stop()
        assert np.array_equal(results[0], results[1])

    def test_async_evolve_refreshes_mirror_at_join(self, converter,
                                                   stars):
        grav = PhiGRAPE(converter, eta=0.05)
        grav.add_particles(stars)
        before = grav.particles.position.value_in(units.m).copy()
        future = grav.evolve_model.async_(0.05 | units.Myr)
        # mirror untouched until the join
        assert np.array_equal(
            before, grav.particles.position.value_in(units.m)
        )
        future.result()
        assert not np.allclose(
            before, grav.particles.position.value_in(units.m)
        )
        grav.stop()

    def test_energy_future_is_unit_aware(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        future = grav.get_kinetic_energy.async_()
        assert isinstance(future, QuantityFuture)
        assert future.value_in(units.J) > 0
        grav.stop()

    def test_field_query_async(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        future = grav.get_gravity_at_point.async_(
            0.01 | units.parsec, stars.position
        )
        acc = future.result().value_in(units.m / units.s ** 2)
        assert acc.shape == (len(stars), 3)
        grav.stop()

    def test_bound_method_metadata(self, converter):
        grav = PhiGRAPE(converter)
        assert grav.evolve_model.__name__ == "evolve_model"
        assert "end_time" in grav.evolve_model.__doc__ or \
            "evolve" in grav.evolve_model.__doc__.lower()
        grav.stop()

    @pytest.mark.network
    def test_async_evolve_over_sockets(self, converter, stars):
        grav = PhiGRAPE(
            converter, channel_type="sockets", eta=0.05
        )
        grav.add_particles(stars)
        future = grav.evolve_model.async_(0.02 | units.Myr)
        future.result(timeout=30)
        assert grav.model_time.value_in(units.Myr) == pytest.approx(
            0.02, rel=1e-6
        )
        grav.stop()


class TestStateGuards:
    def test_evolving_stopped_code_raises(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        grav.stop()
        with pytest.raises(CodeStateError, match="stopped"):
            grav.evolve_model(0.01 | units.Myr)
        with pytest.raises(CodeStateError, match="stopped"):
            grav.evolve_model.async_(0.01 | units.Myr)

    def test_double_stop_raises(self, converter):
        grav = PhiGRAPE(converter)
        grav.stop()
        with pytest.raises(CodeStateError, match="already been stopped"):
            grav.stop()

    def test_context_manager_tolerates_explicit_stop(self, converter):
        with PhiGRAPE(converter) as grav:
            grav.stop()   # __exit__ must not double-stop

    def test_exit_with_inflight_future_preserves_exception(
            self, converter, stars):
        """Unwinding with an outstanding future must propagate the
        body's exception (not mask it with CodeStateError) and still
        shut the worker down."""
        grav = PhiGRAPE(converter, eta=0.05)
        with pytest.raises(ValueError, match="body failed"):
            with grav:
                grav.add_particles(stars)
                grav.evolve_model.async_(0.02 | units.Myr)
                raise ValueError("body failed")
        assert grav.stopped

    def test_edits_during_inflight_evolve_raise(self, converter,
                                                stars):
        grav = PhiGRAPE(converter, eta=0.05)
        grav.add_particles(stars)
        future = grav.evolve_model.async_(0.02 | units.Myr)
        with pytest.raises(CodeStateError, match="in flight"):
            grav.push_masses()
        with pytest.raises(CodeStateError, match="in flight"):
            grav.kick(np.ones((len(stars), 3)) | units.kms)
        with pytest.raises(CodeStateError, match="in flight"):
            grav.evolve_model(0.03 | units.Myr)
        with pytest.raises(CodeStateError, match="in flight"):
            grav.stop()
        with pytest.raises(CodeStateError, match="in flight"):
            grav.parameters.eta = 0.1
        future.result()
        # after the join everything is legal again
        grav.push_masses()
        grav.stop()

    def test_inflight_cleared_even_when_evolve_fails(self, converter):
        grav = PhiGRAPE(converter, eta=-1.0)   # commit will fail
        future = grav.evolve_model.async_(0.01 | units.Myr)
        with pytest.raises(Exception):
            future.result()
        assert grav._inflight.inflight is None
        grav.stop()

    def test_reads_allowed_during_inflight(self, converter, stars):
        grav = PhiGRAPE(converter, eta=0.05)
        grav.add_particles(stars)
        future = grav.evolve_model.async_(0.02 | units.Myr)
        # diagnostics pipeline behind the evolve; they are not edits
        assert grav.kinetic_energy.value_in(units.J) > 0
        future.result()
        grav.stop()

    def test_evolve_during_inflight_kick_raises(self, converter,
                                                stars):
        """The guard works in BOTH directions: an outstanding kick or
        push future blocks a new evolve, otherwise the kick's join
        would clobber the post-evolve worker state."""
        grav = PhiGRAPE(converter, eta=0.05)
        grav.add_particles(stars)
        kick = grav.kick.async_(
            np.ones((len(stars), 3)) | units.kms
        )
        with pytest.raises(CodeStateError, match="in flight"):
            grav.evolve_model(0.02 | units.Myr)
        kick.result()
        push = grav.push_state.async_()
        with pytest.raises(CodeStateError, match="in flight"):
            grav.evolve_model.async_(0.02 | units.Myr)
        push.result()
        grav.evolve_model(0.02 | units.Myr)   # legal after the joins
        grav.stop()

    def test_field_upload_during_inflight_evolve_raises(
            self, converter, stars):
        """A sources= field query replaces the worker's particles — a
        mutation that must not pipeline behind an in-flight evolve."""
        from repro.codes import Fi
        fi = Fi(converter)
        fi.add_particles(stars)
        mass = fi._to_code(stars.mass, fi._MASS_UNIT)
        pos = fi._to_code(stars.position, fi._LENGTH_UNIT)
        future = fi.evolve_model.async_(0.01 | units.Myr)
        with pytest.raises(CodeStateError, match="in flight"):
            fi.get_gravity_at_point(
                0.01 | units.parsec, stars.position,
                sources=(mass, pos),
            )
        # plain (read-only) field queries remain legal mid-evolve
        fi.get_gravity_at_point(0.01 | units.parsec, stars.position)
        future.result()
        fi.stop()

    def test_pull_state_on_stopped_code_raises(self):
        code = SleepCode()
        code.stop()
        with pytest.raises(CodeStateError, match="stopped"):
            code.pull_state()
        with pytest.raises(CodeStateError, match="stopped"):
            code.model_time

    def test_tracker_overlap_message(self):
        tracker = InflightTracker("PhiGRAPE")
        tracker.begin("evolve_model")
        with pytest.raises(CodeStateError, match="PhiGRAPE"):
            tracker.begin("evolve_model")
        tracker.finish("evolve_model")
        tracker.begin("evolve_model")   # legal again
        tracker.finish("evolve_model")


class TestEvolveGroup:
    def test_two_codes_advance_together(self, converter, stars):
        a = PhiGRAPE(converter, eta=0.05)
        b = PhiGRAPE(converter, eta=0.05)
        a.add_particles(stars)
        b.add_particles(stars)
        group = EvolveGroup([a, b])
        results = group.evolve(0.02 | units.Myr)
        assert len(results) == 2
        for code in (a, b):
            assert code.model_time.value_in(units.Myr) == \
                pytest.approx(0.02, rel=1e-6)
        group.stop()

    def test_plain_callable_member_offloads(self):
        seen = []
        group = EvolveGroup([seen.append])
        group.evolve(1.25)
        assert seen == [1.25]

    def test_offloaded_member_guarded_against_overlap(self):
        """Blocking-only members get a group-level in-flight guard: a
        retry after a timeout raises eagerly instead of running two
        calls concurrently on the same object."""

        class SlowStepper:
            def __init__(self):
                self.gate = threading.Event()
                self.calls = 0

            def evolve_model(self, t_end):
                self.calls += 1
                assert self.gate.wait(5)
                return t_end

        stepper = SlowStepper()
        group = EvolveGroup([stepper])
        with pytest.raises(TimeoutError):
            group.evolve(1.0, timeout=0.05)
        with pytest.raises(CodeStateError, match="in flight"):
            group.evolve(2.0)
        assert stepper.calls == 1        # never ran concurrently
        stepper.gate.set()
        tracker = group._offload_trackers[id(stepper)]
        deadline = time.monotonic() + 5.0
        while tracker.inflight is not None and \
                time.monotonic() < deadline:
            time.sleep(0.01)
        assert group.evolve(3.0) == [3.0]   # unlocked after finish

    def test_blocking_member_offloads(self):
        class Stepper:
            def __init__(self):
                self.t = 0.0

            def evolve_model(self, t_end):
                self.t = t_end
                return t_end

        stepper = Stepper()
        assert EvolveGroup([stepper]).evolve(2.5) == [2.5]
        assert stepper.t == 2.5

    def test_failure_is_aggregate_and_names_model(self, converter,
                                                  stars):
        def broken(_t):
            raise RuntimeError("model diverged")

        grav = PhiGRAPE(converter, eta=0.05)
        grav.add_particles(stars)
        group = EvolveGroup([grav, broken])
        with pytest.raises(AggregateRequestError,
                           match="model diverged"):
            group.evolve(0.02 | units.Myr)
        # the healthy code was still joined: no stranded transition
        assert grav._inflight.inflight is None
        grav.stop()

    @pytest.mark.network
    def test_sleepy_workers_genuinely_overlap(self):
        """Two equal-cost workers must finish in well under 2x one —
        the acceptance shape of the async redesign, at test scale."""
        codes = [SleepCode(channel_type="sockets") for _ in range(2)]
        group = EvolveGroup(codes)
        start = time.perf_counter()
        group.evolve(1.0 | nbody_system.time)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.6 * 0.15
        group.stop()

    @pytest.mark.network
    def test_timeout_cancels_futures_and_unlocks_codes(self):
        """A timeout CANCELS the outstanding evolve: the wire call is
        withdrawn from the pending table and the in-flight tracker
        retires immediately — the code unlocks without waiting for the
        worker to answer (the pre-cancel API could only abandon and
        wait)."""
        code = SleepCode(channel_type="sockets")
        group = EvolveGroup([code])
        with pytest.raises(TimeoutError):
            group.evolve(1.0 | nbody_system.time, timeout=0.02)
        # unlocked NOW, not whenever the worker finishes its sleep
        assert code._inflight.inflight is None
        # the pending table stays consistent: only the cancel ack may
        # still be in flight, and it drains promptly
        deadline = time.monotonic() + 5.0
        while code.channel._pending and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not code.channel._pending
        code.stop()   # orderly stop works again

    def test_failed_launch_joins_already_launched(self, converter,
                                                  stars):
        """A mid-launch failure (stopped member) must not strand the
        futures already launched on healthy members."""
        healthy = PhiGRAPE(converter, eta=0.05)
        healthy.add_particles(stars)
        dead = PhiGRAPE(converter)
        dead.stop()
        group = EvolveGroup([healthy, dead])
        with pytest.raises(CodeStateError, match="stopped"):
            group.evolve(0.02 | units.Myr)
        # the healthy code was joined on the way out: not locked
        assert healthy._inflight.inflight is None
        healthy.stop()

    def test_stop_skips_already_stopped(self, converter):
        a = PhiGRAPE(converter)
        b = PhiGRAPE(converter)
        group = EvolveGroup([a, b])
        a.stop()
        group.stop()        # must not raise on the stopped member
        assert a.stopped and b.stopped

    def test_stop_forces_shutdown_of_busy_member(self, converter,
                                                 stars):
        """A member with an outstanding future must not abort the
        group cleanup: it is force-shut-down and the REST of the group
        still gets stopped."""
        busy = PhiGRAPE(converter, eta=0.05)
        busy.add_particles(stars)
        idle = PhiGRAPE(converter)
        group = EvolveGroup([busy, idle])
        busy.evolve_model.async_(0.02 | units.Myr)   # never joined
        group.stop()
        assert busy.stopped and idle.stopped


class TestBridgeKickRecovery:
    def test_failed_field_query_does_not_strand_kicks(self, converter,
                                                      stars):
        """A failing partner must not strand a sibling system's
        already-launched kick: the kick is joined (mirror stays
        coherent) and the original error propagates."""
        from repro.coupling import Bridge, CouplingField
        from repro.codes import Fi

        a = PhiGRAPE(converter, eta=0.05)
        b = PhiGRAPE(converter, eta=0.05)
        a.add_particles(stars)
        b.add_particles(stars)
        coupling = Fi(converter)
        broken = SimpleNamespace(
            get_gravity_at_point=SimpleNamespace(
                async_=lambda eps, pos: Future.failed(
                    RuntimeError("field worker died")
                )
            )
        )
        bridge = Bridge(timestep=Quantity(0.01, units.Myr))
        bridge.add_system(a, [CouplingField(coupling, [b])])
        bridge.add_system(b, [broken])
        with pytest.raises(RuntimeError, match="field worker died"):
            bridge.kick_systems(0.005 | units.Myr)
        # a's kick was joined: no stranded transition, mirror matches
        # the worker
        assert a._inflight.inflight is None
        assert np.allclose(
            a.channel.call("get_velocity"),
            a._to_code(a.particles.velocity, a._SPEED_UNIT),
        )
        bridge.stop()
        coupling.stop()


class TestParametersProxy:
    @pytest.mark.network
    def test_repr_is_single_batched_frame(self, converter):
        grav = PhiGRAPE(converter, channel_type="sockets")
        sent = []
        original = grav.channel._send_frame_locked
        grav.channel._send_frame_locked = lambda message: (
            sent.append(message), original(message))[1]
        text = repr(grav.parameters)
        assert "eta=" in text and "eps2=" in text
        assert len(sent) == 1
        assert sent[0][0] == "mcall"
        grav.channel._send_frame_locked = original
        grav.stop()

    @pytest.mark.network
    def test_kick_is_single_round_trip(self, converter, stars):
        """Kicks use the worker-side add_velocity op: one frame, no
        get/set pair."""
        grav = PhiGRAPE(converter, channel_type="sockets")
        grav.add_particles(stars)
        sent = []
        original = grav.channel._send_frame_locked
        grav.channel._send_frame_locked = lambda message: (
            sent.append(message), original(message))[1]
        grav.kick(np.ones((len(stars), 3)) | units.kms)
        assert len(sent) == 1
        assert sent[0][2] == "add_velocity"
        grav.channel._send_frame_locked = original
        grav.stop()

    def test_repr_on_direct_channel(self, converter):
        grav = PhiGRAPE(converter, eta=0.125)
        assert "eta=0.125" in repr(grav.parameters)
        grav.stop()


class TestConcurrencyAccounting:
    def test_jungle_runner_infers_overlap_from_bridge(self):
        jungle = make_lab_jungle()
        damuse = SimpleNamespace(jungle=jungle)
        sim_async = SimpleNamespace(
            bridge=SimpleNamespace(use_async=True)
        )
        sim_sync = SimpleNamespace(
            bridge=SimpleNamespace(use_async=False)
        )
        assert JungleRunner(sim_async, damuse).overlap_drift is True
        assert JungleRunner(sim_sync, damuse).overlap_drift is False
        assert JungleRunner(None, damuse).overlap_drift is False
        assert JungleRunner(
            sim_async, damuse, overlap_drift=False
        ).overlap_drift is False
        # inference is LIVE: toggling the bridge mid-run is honored
        runner = JungleRunner(sim_async, damuse)
        sim_async.bridge.use_async = False
        assert runner.overlap_drift is False


class TestCesmOverlap:
    def test_concurrent_step_matches_serial(self):
        serial = EarthSystemModel(overlap_components=False)
        overlap = EarthSystemModel(overlap_components=True)
        d_serial = serial.run(30.0, dt_days=5.0)
        d_overlap = overlap.run(30.0, dt_days=5.0)
        for key in ("global_mean_t_air_k", "global_mean_sst_k",
                    "ice_fraction"):
            assert d_overlap[key] == pytest.approx(
                d_serial[key], rel=1e-12
            )


class TestSseAsync:
    def test_sse_evolve_async(self):
        se = SSE()
        p = new_plummer_model(3, rng=3)
        p.mass = np.array([1.0, 5.0, 12.0]) | units.MSun
        se.add_particles(p)
        future = se.evolve_model.async_(30.0 | units.Myr)
        future.result()
        assert np.asarray(se.particles.stellar_type)[2] >= 13
        se.stop()

    def test_time_of_next_supernova_async(self):
        se = SSE()
        p = new_plummer_model(2, rng=4)
        p.mass = np.array([9.0, 1.0]) | units.MSun
        se.add_particles(p)
        t_sn = se.time_of_next_supernova.async_()
        assert isinstance(t_sn, QuantityFuture)
        assert 20.0 < t_sn.value_in(units.Myr) < 50.0
        se.stop()
