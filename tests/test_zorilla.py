"""Zorilla P2P middleware tests."""

import pytest

from repro.ibis.zorilla import ZorillaError, ZorillaOverlay
from repro.jungle import FirewallPolicy, Host, Jungle


def loose_machines(n=6, connect_all=True):
    j = Jungle()
    hosts = []
    for i in range(n):
        site = j.new_site(f"place{i}", "standalone")
        h = Host(f"pc{i}", cores=2, policy=FirewallPolicy.OPEN)
        site.add_host(h, frontend=True)
        hosts.append(h)
        if connect_all and i:
            j.connect(f"place{i - 1}", f"place{i}", 0.001, 1.0)
    return j, hosts


class TestMembership:
    def test_bootstrap_chain(self):
        j, hosts = loose_machines(4)
        overlay = ZorillaOverlay(j, rng=0)
        nodes = [overlay.add_node(h) for h in hosts]
        # before gossip every newcomer knows only the bootstrap
        assert all(
            len(n.known) <= 2 for n in nodes[1:]
        )

    def test_gossip_converges(self):
        j, hosts = loose_machines(6)
        overlay = ZorillaOverlay(j, rng=1)
        for h in hosts:
            overlay.add_node(h)
        overlay.run_gossip()
        j.env.run()
        assert overlay.converged()

    def test_gossip_deterministic_with_seed(self):
        def run(seed):
            j, hosts = loose_machines(5)
            overlay = ZorillaOverlay(j, rng=seed)
            for h in hosts:
                overlay.add_node(h)
            for _ in range(3):
                overlay.gossip_round()
            return sorted(
                (name, tuple(sorted(n.known)))
                for name, n in overlay.nodes.items()
            )

        assert run(7) == run(7)

    def test_gossip_traffic_recorded(self):
        j, hosts = loose_machines(4)
        overlay = ZorillaOverlay(j, rng=2)
        for h in hosts:
            overlay.add_node(h)
        overlay.gossip_round()
        assert j.network.traffic.total_bytes("gossip") > 0


class TestFloodScheduling:
    def test_claims_requested_nodes(self):
        j, hosts = loose_machines(5)
        overlay = ZorillaOverlay(j, rng=3)
        for h in hosts:
            overlay.add_node(h)
        overlay.run_gossip()
        j.env.run()
        claimed = overlay.flood_schedule(hosts[0], 3)
        assert len(claimed) == 3
        assert all(n.slots.in_use == 1 for n in claimed)
        overlay.release(claimed)
        assert all(n.free_slots == n.slots.capacity
                   for n in overlay.nodes.values())

    def test_insufficient_capacity_raises_and_rolls_back(self):
        j, hosts = loose_machines(2)
        overlay = ZorillaOverlay(j, rng=4)
        for h in hosts:
            overlay.add_node(h)
        overlay.run_gossip()
        j.env.run()
        with pytest.raises(ZorillaError):
            overlay.flood_schedule(hosts[0], 100)
        assert all(
            n.free_slots == n.slots.capacity
            for n in overlay.nodes.values()
        )

    def test_ttl_bounds_flood(self):
        j, hosts = loose_machines(6)
        overlay = ZorillaOverlay(j, rng=5)
        nodes = [overlay.add_node(h) for h in hosts]
        # line topology in knowledge: node i knows only i-1, i+1
        for i, node in enumerate(nodes):
            node.known = {nodes[i].name}
            if i > 0:
                node.known.add(nodes[i - 1].name)
            if i < len(nodes) - 1:
                node.known.add(nodes[i + 1].name)
        # need 6 nodes but only ttl=1 hop from node 0 -> too few
        with pytest.raises(ZorillaError):
            overlay.flood_schedule(hosts[0], 6, ttl=1)

    def test_gpu_filter(self):
        from repro.jungle import TESLA_C2050
        j, hosts = loose_machines(3)
        hosts[2].gpu = TESLA_C2050
        overlay = ZorillaOverlay(j, rng=6)
        for h in hosts:
            overlay.add_node(h)
        overlay.run_gossip()
        j.env.run()
        claimed = overlay.flood_schedule(
            hosts[0], 1, needs_gpu=True
        )
        assert claimed[0].host.name == "pc2"
        overlay.release(claimed)

    def test_unknown_origin(self):
        j, hosts = loose_machines(2)
        overlay = ZorillaOverlay(j, rng=7)
        overlay.add_node(hosts[0])
        with pytest.raises(ZorillaError):
            overlay.flood_schedule(hosts[1], 1)


class TestGATIntegration:
    def test_as_site_and_submit(self):
        from repro.ibis.gat import GAT, JobDescription

        j, hosts = loose_machines(4)
        overlay = ZorillaOverlay(j, rng=8)
        for h in hosts:
            overlay.add_node(h)
        overlay.run_gossip()
        j.env.run()
        site = overlay.as_site("adhoc")
        gat = GAT(j, hosts[0])
        job = gat.submit_job(
            JobDescription("w", node_count=2, duration_s=5.0), site
        )
        j.env.run()
        assert job.state == "STOPPED"
        assert job.adaptor_name == "ZorillaAdaptor"
