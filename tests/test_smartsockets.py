"""SmartSockets tests: strategies, overlay, routing under firewalls."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ibis.smartsockets import (
    NoRouteError,
    VirtualAddress,
    VirtualSocketFactory,
)
from repro.jungle import (
    FirewallPolicy,
    Host,
    Jungle,
    make_sc11_jungle,
)


def simple_jungle():
    """Two sites, one open frontend + one firewalled node each."""
    j = Jungle()
    for name in ("left", "right"):
        site = j.new_site(name, "cluster")
        fe = Host(f"{name}-fe", policy=FirewallPolicy.OPEN)
        site.add_host(fe, frontend=True)
        site.add_host(
            Host(f"{name}-node", policy=FirewallPolicy.FIREWALLED)
        )
    j.connect("left", "right", 0.005, 1.0)
    return j


@pytest.fixture
def factory():
    j = simple_jungle()
    f = VirtualSocketFactory(j)
    f.overlay.add_hub(j.host("left-fe"))
    f.overlay.add_hub(j.host("right-fe"))
    return f


class TestStrategySelection:
    def test_direct_to_open_host(self, factory):
        j = factory.jungle
        server = factory.create_server_socket(j.host("right-fe"))
        conn = factory.connect_untimed(
            j.host("left-fe"), server.address
        )
        assert conn.strategy == "direct"
        assert conn.hops == 1

    def test_reverse_through_firewall(self, factory):
        """Open src -> firewalled dst: dst dials back (reverse)."""
        j = factory.jungle
        server = factory.create_server_socket(j.host("right-node"))
        conn = factory.connect_untimed(
            j.host("left-fe"), server.address
        )
        assert conn.strategy == "reverse"
        # payload flows on the direct (reversed) link
        assert [h.name for h in conn.route] == \
            ["left-fe", "right-node"]

    def test_routed_when_both_blocked(self, factory):
        """Firewalled src -> firewalled dst: relay via hubs."""
        j = factory.jungle
        server = factory.create_server_socket(j.host("right-node"))
        conn = factory.connect_untimed(
            j.host("left-node"), server.address
        )
        assert conn.strategy == "routed"
        names = [h.name for h in conn.route]
        assert names[0] == "left-node" and names[-1] == "right-node"
        assert any("fe" in n for n in names[1:-1])

    def test_same_site_is_direct(self, factory):
        j = factory.jungle
        server = factory.create_server_socket(j.host("left-node"))
        conn = factory.connect_untimed(
            j.host("left-fe"), server.address
        )
        assert conn.strategy == "direct"

    def test_no_route_raises(self):
        j = simple_jungle()
        f = VirtualSocketFactory(j)     # NO hubs at all
        server = f.create_server_socket(j.host("right-node"))
        with pytest.raises(NoRouteError):
            f.connect_untimed(j.host("left-node"), server.address)

    def test_unknown_address(self, factory):
        with pytest.raises(NoRouteError):
            factory.connect_untimed(
                factory.jungle.host("left-fe"),
                VirtualAddress("nowhere", 1),
            )

    def test_strategy_counters(self, factory):
        j = factory.jungle
        server = factory.create_server_socket(j.host("right-fe"))
        factory.connect_untimed(j.host("left-fe"), server.address)
        assert factory.strategy_counts["direct"] == 1


class TestConnectionTiming:
    def test_connect_charges_setup_time(self, factory):
        j = factory.jungle
        server = factory.create_server_socket(j.host("right-node"))

        def proc(env):
            return (yield from factory.connect(
                j.host("left-node"), server.address
            ))

        p = j.env.process(proc(j.env))
        j.env.run()
        assert p.value.strategy == "routed"
        assert j.env.now > 0.005     # at least one WAN latency

    def test_send_transfers_and_accounts(self, factory):
        j = factory.jungle
        server = factory.create_server_socket(j.host("right-fe"))
        conn = factory.connect_untimed(
            j.host("left-fe"), server.address
        )

        def proc(env):
            yield from conn.send(1_000_000)

        j.env.process(proc(j.env))
        j.env.run()
        assert conn.bytes_sent == 1_000_000
        assert j.network.traffic.matrix("ipl")[
            ("left", "right")] >= 1_000_000

    def test_routed_transfer_slower_than_direct(self, factory):
        j = factory.jungle
        direct_srv = factory.create_server_socket(j.host("right-fe"))
        direct = factory.connect_untimed(
            j.host("left-fe"), direct_srv.address
        )
        routed_srv = factory.create_server_socket(
            j.host("right-node")
        )
        routed = factory.connect_untimed(
            j.host("left-node"), routed_srv.address
        )
        assert routed.transfer_time(10000) > direct.transfer_time(10000)


class TestOverlay:
    def test_sc11_overlay_edge_kinds(self):
        j = make_sc11_jungle()
        f = VirtualSocketFactory(j)
        for site in j.sites.values():
            f.overlay.add_hub(site.frontend)
        kinds = {kind for _, _, kind in f.overlay.edges()}
        # frontends interconnect directly; the firewalled laptop's
        # links are one-way (the arrows of paper Fig. 10)
        assert kinds == {"direct", "one-way"}

    def test_hub_for_prefers_same_site(self, factory):
        j = factory.jungle
        hub = factory.overlay.hub_for(j.host("left-node"))
        assert hub.host.name == "left-fe"

    def test_hub_route_same_hub(self, factory):
        j = factory.jungle
        route = factory.overlay.hub_route(
            j.host("left-node"), j.host("left-fe")
        )
        assert route == ["left-fe"]

    def test_no_hub_returns_none(self):
        j = simple_jungle()
        f = VirtualSocketFactory(j)
        assert f.overlay.hub_for(j.host("left-node")) is None


class TestRoutingProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from(
                [FirewallPolicy.OPEN, FirewallPolicy.FIREWALLED,
                 FirewallPolicy.NAT]
            ),
            min_size=2, max_size=5,
        )
    )
    def test_delivery_whenever_hubs_exist(self, policies):
        """With open hubs on every site, any two non-isolated hosts
        can always be connected by SOME strategy."""
        j = Jungle()
        hosts = []
        for i, policy in enumerate(policies):
            site = j.new_site(f"s{i}", "cluster")
            fe = Host(f"fe{i}", policy=FirewallPolicy.OPEN)
            site.add_host(fe, frontend=True)
            node = Host(f"n{i}", policy=policy)
            site.add_host(node)
            hosts.append(node)
            if i:
                j.connect(f"s{i - 1}", f"s{i}", 0.001, 1.0)
        f = VirtualSocketFactory(j)
        for site in j.sites.values():
            f.overlay.add_hub(site.frontend)
        server = f.create_server_socket(hosts[-1])
        conn = f.connect_untimed(hosts[0], server.address)
        assert conn.strategy in ("direct", "reverse", "routed")
