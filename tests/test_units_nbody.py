"""Generic (N-body) units and the nbody<->SI converter."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.units import constants, nbody_system, units


@pytest.fixture
def sun_earth():
    return nbody_system.nbody_to_si(1.0 | units.MSun, 1.0 | units.AU)


class TestConverterConstruction:
    def test_requires_two_anchors(self):
        with pytest.raises(ValueError):
            nbody_system.nbody_to_si(1.0 | units.MSun)

    def test_rejects_dependent_anchors(self):
        with pytest.raises(ValueError):
            nbody_system.nbody_to_si(1.0 | units.m, 2.0 | units.m)

    def test_rejects_nonmechanical_anchor(self):
        with pytest.raises(ValueError):
            nbody_system.nbody_to_si(1.0 | units.K, 1.0 | units.m)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            nbody_system.nbody_to_si(-1.0 | units.MSun, 1.0 | units.AU)

    def test_mass_length_scales(self, sun_earth):
        assert sun_earth.mass_scale == pytest.approx(
            (1.0 | units.MSun).value_in(units.kg)
        )
        assert sun_earth.length_scale == pytest.approx(
            (1.0 | units.AU).value_in(units.m)
        )

    def test_velocity_time_anchors_work(self):
        conv = nbody_system.nbody_to_si(
            1.0 | units.MSun, 1.0 | units.kms
        )
        one = conv.to_nbody(1.0 | units.kms)
        assert one.number == pytest.approx(1.0)


class TestKepler:
    def test_time_unit_is_inverse_two_pi_year(self, sun_earth):
        """For M=MSun, a=AU: t_nbody = sqrt(a^3/GM) = yr/2pi."""
        t = sun_earth.to_si(1.0 | nbody_system.time)
        assert t.value_in(units.yr) == pytest.approx(
            1.0 / (2.0 * np.pi), rel=1e-4
        )

    def test_g_is_one_in_nbody(self, sun_earth):
        g_nbody = sun_earth.to_nbody(constants.G)
        assert g_nbody.number == pytest.approx(1.0)

    def test_circular_velocity(self, sun_earth):
        v = sun_earth.to_si(1.0 | nbody_system.speed)
        # circular orbital speed of Earth ~ 29.78 km/s
        assert v.value_in(units.kms) == pytest.approx(29.78, rel=1e-2)


class TestConversionRoundTrips:
    def test_energy_round_trip(self, sun_earth):
        e = 2.5 | nbody_system.energy
        back = sun_earth.to_nbody(sun_earth.to_si(e))
        assert back.number == pytest.approx(2.5)
        assert back.unit.powers == e.unit.powers

    def test_si_to_nbody_mass(self, sun_earth):
        m = sun_earth.to_nbody(2.0 | units.MSun)
        assert m.number == pytest.approx(2.0)

    def test_vector_quantities(self, sun_earth):
        pos = np.ones((3, 3)) | nbody_system.length
        si = sun_earth.to_si(pos)
        assert si.number.shape == (3, 3)
        assert si.value_in(units.AU)[0, 0] == pytest.approx(1.0)

    @given(st.floats(min_value=1e-3, max_value=1e3))
    def test_round_trip_property(self, value):
        conv = nbody_system.nbody_to_si(
            1000.0 | units.MSun, 1.0 | units.parsec
        )
        q = value | nbody_system.acceleration
        back = conv.to_nbody(conv.to_si(q))
        assert back.number == pytest.approx(value, rel=1e-10)

    @given(
        st.floats(min_value=0.1, max_value=1e6),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_any_anchor_pair_keeps_g_unity(self, mass_msun, radius_pc):
        conv = nbody_system.nbody_to_si(
            mass_msun | units.MSun, radius_pc | units.parsec
        )
        assert conv.to_nbody(constants.G).number == pytest.approx(1.0)


class TestGenericUnits:
    def test_generic_flag(self):
        assert nbody_system.mass.is_generic
        assert not units.kg.is_generic

    def test_g_constant_units(self):
        assert nbody_system.G.unit.is_generic
        assert nbody_system.G.number == 1.0

    def test_derived_generic_units(self):
        e = (1 | nbody_system.mass) * (1 | nbody_system.speed) ** 2
        assert e.unit.powers == nbody_system.energy.powers
