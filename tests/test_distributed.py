"""Distributed AMUSE tests: daemon, ibis channel, pilots, faults."""

import pytest

from repro.codes import PhiGRAPE
from repro.codes.phigrape import PhiGRAPEInterface
from repro.distributed import (
    DistributedAmuse,
    DistributedChannel,
    FaultPolicy,
    IbisDaemon,
    JungleRunner,
    ResourceSpec,
    WorkerDiedError,
)
from repro.ic import new_plummer_model
from repro.jungle import make_sc11_jungle
from repro.rpc import RemoteError
from repro.units import nbody_system, units

pytestmark = pytest.mark.network


@pytest.fixture(scope="module")
def daemon():
    d = IbisDaemon()
    d.start()
    yield d
    d.shutdown()


class TestDaemon:
    def test_echo_round_trip(self, daemon):
        ch = DistributedChannel(
            PhiGRAPEInterface, daemon=daemon, resource="local"
        )
        payload = b"x" * 100_000
        assert ch.echo(payload) == payload
        ch.stop()

    def test_start_worker_and_call(self, daemon):
        ch = DistributedChannel(
            PhiGRAPEInterface, daemon=daemon, resource="LGM"
        )
        ids = ch.call(
            "new_particle", [1.0], [0.0], [0.0], [0.0],
            [0.0], [0.0], [0.0],
        )
        assert len(ids) == 1
        assert ch.call("get_number_of_particles") == 1
        ch.stop()

    def test_worker_metadata(self, daemon):
        ch = DistributedChannel(
            PhiGRAPEInterface, daemon=daemon, resource="VU",
            node_count=4,
        )
        workers = ch._request(("list_workers",)).result()
        meta = workers[ch.worker_id]
        assert meta["resource"] == "VU"
        assert meta["node_count"] == 4
        assert meta["code"] == "PhiGRAPEInterface"
        ch.stop()

    def test_remote_error_propagates(self, daemon):
        ch = DistributedChannel(
            PhiGRAPEInterface, daemon=daemon
        )
        with pytest.raises(RemoteError):
            ch.call("no_such_method")
        ch.stop()

    def test_stopped_worker_unreachable(self, daemon):
        ch = DistributedChannel(PhiGRAPEInterface, daemon=daemon)
        worker_id = ch.worker_id
        ch.stop()
        ch2 = DistributedChannel(PhiGRAPEInterface, daemon=daemon)
        with pytest.raises(RemoteError):
            ch2._request(
                ("call", worker_id, "get_model_time", (), {})
            ).result()
        ch2.stop()

    def test_channel_requires_daemon(self):
        with pytest.raises(ValueError):
            DistributedChannel(PhiGRAPEInterface)


class TestIbisChannelHighLevel:
    def test_full_simulation_over_ibis_channel(self, daemon):
        conv = nbody_system.nbody_to_si(
            100.0 | units.MSun, 1.0 | units.parsec
        )
        stars = new_plummer_model(24, convert_nbody=conv, rng=0)
        grav = PhiGRAPE(
            conv, channel_type="ibis",
            channel_options={"daemon": daemon, "resource": "LGM"},
            eta=0.05,
        )
        grav.add_particles(stars)
        grav.evolve_model(0.05 | units.Myr)
        assert grav.model_time.value_in(units.Myr) == pytest.approx(
            0.05, rel=1e-6
        )
        assert grav.channel.kind == "ibis"
        grav.stop()

    def test_async_calls_pipelined(self, daemon):
        ch = DistributedChannel(PhiGRAPEInterface, daemon=daemon)
        reqs = [ch.async_call("get_model_time") for _ in range(10)]
        assert all(r.result() == 0.0 for r in reqs)
        ch.stop()


def build_damuse(fault_policy=FaultPolicy.CRASH):
    jungle = make_sc11_jungle()
    damuse = DistributedAmuse(
        jungle, jungle.host("laptop"), fault_policy=fault_policy
    )
    damuse.add_resource(
        ResourceSpec("LGM", "LGM (LU)", "ssh", 1, needs_gpu=True)
    )
    damuse.add_resource(ResourceSpec("VU", "DAS-4 (VU)", "sge", 8))
    damuse.add_resource(ResourceSpec("UvA", "DAS-4 (UvA)", "sge", 1))
    damuse.add_resource(
        ResourceSpec("TUD", "DAS-4 (TUD)", "sge", 2, needs_gpu=True)
    )
    damuse.new_pilot("gravity", "LGM")
    damuse.new_pilot("hydro", "VU", node_count=8)
    damuse.new_pilot("se", "UvA")
    damuse.new_pilot("coupling", "TUD", node_count=2)
    return jungle, damuse


class TestPilots:
    def test_pilots_deploy(self):
        jungle, damuse = build_damuse()
        assert damuse.wait_for_pilots()
        assert all(p.alive for p in damuse.pilots.values())
        # proxies joined the IPL pool: client + 4 proxies
        assert damuse.deploy.registry.size() == 5

    def test_unknown_site_rejected(self):
        jungle, damuse = build_damuse()
        with pytest.raises(KeyError):
            damuse.add_resource(ResourceSpec("X", "Atlantis"))

    def test_worker_connections_use_smartsockets(self):
        jungle, damuse = build_damuse()
        damuse.wait_for_pilots()
        counts = damuse.deploy.factory.strategy_counts
        assert sum(counts.values()) >= 4
        # isolated/firewalled workers + firewalled laptop => routed
        assert counts["routed"] >= 1

    def test_placement_mirrors_pilots(self):
        jungle, damuse = build_damuse()
        damuse.wait_for_pilots()
        placement = damuse.placement()
        assert sorted(placement.roles()) == [
            "coupling", "gravity", "hydro", "se"
        ]
        assert placement.nodes("hydro") == 8
        assert placement.host("gravity").has_gpu


class TestJungleRunner:
    def test_modeled_iteration_time_matches_sc11(self):
        jungle, damuse = build_damuse()
        damuse.wait_for_pilots()
        runner = JungleRunner(None, damuse)
        summary = runner.run(3)
        # SC11 worst case: same placement as the lab jungle run but
        # with transatlantic RPC latency -> slightly slower than 62.4
        assert 50.0 < summary["modeled_s_per_iteration"] < 90.0

    def test_costs_accumulate(self):
        jungle, damuse = build_damuse()
        damuse.wait_for_pilots()
        runner = JungleRunner(None, damuse)
        runner.run_iteration()
        runner.run_iteration()
        assert len(runner.iteration_costs) == 2
        assert runner.modeled_elapsed_s > 0

    def test_overlap_drift_variant_faster(self):
        jungle, damuse = build_damuse()
        damuse.wait_for_pilots()
        seq = JungleRunner(None, damuse).run_iteration()["total_s"]
        par = JungleRunner(
            None, damuse, overlap_drift=True
        ).run_iteration()["total_s"]
        assert par < seq


class TestFaults:
    def test_crash_policy_reproduces_paper_behaviour(self):
        jungle, damuse = build_damuse()
        damuse.wait_for_pilots()
        runner = JungleRunner(None, damuse)
        runner.run_iteration()
        damuse.pilots["hydro"].kill("reservation ended")
        with pytest.raises(WorkerDiedError):
            runner.run_iteration()
        assert damuse.fault_log[0][1] == "hydro"

    def test_dead_proxy_reported_to_registry(self):
        jungle, damuse = build_damuse()
        damuse.wait_for_pilots()
        ident = damuse.pilots["se"].proxy_ibis.identifier
        damuse.pilots["se"].kill()
        assert damuse.deploy.registry.is_dead(ident)

    def test_restart_policy_prefers_other_site(self):
        """With spare capacity elsewhere (SARA), the replacement moves
        off the failed resource — the paper's 'transparently find a
        replacement machine' future work."""
        jungle, damuse = build_damuse(FaultPolicy.RESTART)
        damuse.add_resource(ResourceSpec("SARA", "SARA", "pbs", 1))
        damuse.wait_for_pilots()
        old = damuse.pilots["se"]
        old.kill()
        new_pilot = damuse.pilots["se"]
        assert new_pilot is not old
        assert new_pilot.resource.site_name == "SARA"
        assert damuse.wait_for_pilots()
        assert damuse.check_alive() is True

    def test_restart_policy_same_site_fallback(self):
        """With every other resource full, the pilot is resubmitted on
        its own resource (the freed reservation slot)."""
        jungle, damuse = build_damuse(FaultPolicy.RESTART)
        damuse.wait_for_pilots()
        old = damuse.pilots["se"]
        old.kill()
        new_pilot = damuse.pilots["se"]
        assert new_pilot is not old
        assert damuse.wait_for_pilots()
        assert damuse.check_alive() is True
