"""Tests for the TaskGraph DAG scheduler, cancellation and RESTART.

Covers the dependency-aware scheduler (per-edge joins, cycle
detection, fault policies), the cancel primitive end to end — the
AMCX wire frame and worker acks, ``Future.cancel()``, cancel racing a
completing reply, cancel on a dead channel, cancel of a never-launched
graph node — the ``wait_all(timeout=)`` consistency fix (timed-out
futures are cancelled, keeping the pending table and the in-flight
trackers consistent), and the RESTART fault policy: a SIGKILLed
subprocess worker mid-evolve is respawned through the channel factory
with parameters and unit-converted state replayed, and the graph
resumes to completion.
"""

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.codes import PhiGRAPE
from repro.codes.base import CodeStateError
from repro.codes.group import EvolveGroup
from repro.codes.testing import SleepCode, SleepInterface
from repro.coupling import Bridge, CouplingField
from repro.ic import new_plummer_model
from repro.rpc import (
    CancelledError,
    AggregateRequestError,
    FaultPolicy,
    Future,
    TaskGraph,
    new_channel,
    wait_all,
)
from repro.rpc.channel import worker_loop
from repro.rpc.protocol import (
    WireState,
    recv_frame,
    send_cancel_frame,
    send_frame,
    send_frame_v2,
)
from repro.units import nbody_system, units


@pytest.fixture
def converter():
    return nbody_system.nbody_to_si(
        200.0 | units.MSun, 0.5 | units.parsec
    )


# -- graph semantics ---------------------------------------------------------


class TestGraphBasics:
    def test_results_and_order(self):
        order = []
        graph = TaskGraph()
        a = graph.add("a", lambda: order.append("a") or 1)
        b = graph.add("b", lambda: order.append("b") or 2, after=[a])
        graph.add("c", lambda: order.append("c") or 3, after=["b"])
        results = graph.run()
        assert results == {"a": 1, "b": 2, "c": 3}
        assert order == ["a", "b", "c"]
        assert graph.states() == {
            "a": "done", "b": "done", "c": "done"
        }

    def test_dep_results_readable_from_nodes(self):
        graph = TaskGraph()
        a = graph.add("a", lambda: 21)
        graph.add("b", lambda: a.result * 2, after=[a])
        assert graph.run()["b"] == 42

    def test_duplicate_name_rejected(self):
        graph = TaskGraph()
        graph.add("a", lambda: 1)
        with pytest.raises(ValueError, match="duplicate"):
            graph.add("a", lambda: 2)

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        with pytest.raises(ValueError, match="unknown dependency"):
            graph.add("a", lambda: 1, after=["ghost"])

    def test_non_callable_launch_rejected(self):
        with pytest.raises(TypeError, match="not callable"):
            TaskGraph().add("a", 42)

    def test_cycle_detected(self):
        graph = TaskGraph()
        a = graph.add("a", lambda: 1)
        b = graph.add("b", lambda: 2, after=[a])
        a.deps.append(b)        # force a cycle behind the API
        b.dependents.append(a)
        with pytest.raises(ValueError, match="cycle"):
            graph.run()

    def test_empty_graph_runs(self):
        assert TaskGraph().run() == {}

    def test_future_launch_joined(self):
        graph = TaskGraph()
        graph.add("f", lambda: Future.completed(7))
        assert graph.run() == {"f": 7}


class TestFailurePolicies:
    def _failing_graph(self):
        graph = TaskGraph()
        boom = graph.add("boom", self._raise)
        graph.add("child", lambda: 1, after=[boom])
        graph.add("independent", lambda: 2)
        return graph

    @staticmethod
    def _raise():
        raise RuntimeError("model diverged")

    def test_raise_skips_dependents_and_aggregates(self):
        graph = self._failing_graph()
        with pytest.raises(AggregateRequestError,
                           match="model diverged"):
            graph.run()
        assert graph["child"].state == "skipped"
        assert graph["independent"].state == "done"

    def test_ignore_lets_dependents_proceed(self):
        graph = self._failing_graph()
        results = graph.run(fault_policy=FaultPolicy.IGNORE)
        assert results == {"child": 1, "independent": 2}
        assert graph["boom"].state == "failed"
        assert isinstance(graph["boom"].error, RuntimeError)

    def test_failed_future_join_follows_policy(self):
        graph = TaskGraph()
        boom = graph.add(
            "boom", lambda: Future.failed(RuntimeError("late"))
        )
        graph.add("child", lambda: 1, after=[boom])
        with pytest.raises(AggregateRequestError, match="late"):
            graph.run()
        assert graph["child"].state == "skipped"

    def test_cancelled_before_run_poisons_dependents(self):
        graph = TaskGraph()
        never = graph.add("never", lambda: 1)
        graph.add("child", lambda: 2, after=[never])
        assert never.cancel()
        assert never.state == "cancelled"
        with pytest.raises(AggregateRequestError, match="cancelled"):
            graph.run()
        assert graph["child"].state == "skipped"
        assert graph["never"].state == "cancelled"

    def test_cancelled_before_run_ignored_under_ignore(self):
        graph = TaskGraph()
        never = graph.add("never", lambda: 1)
        graph.add("child", lambda: 2, after=[never])
        never.cancel()
        assert graph.run(fault_policy=FaultPolicy.IGNORE) == \
            {"child": 2}


@pytest.mark.network
class TestPerEdgeJoins:
    def test_fast_chain_rides_slow_drift_slack(self):
        """The tentpole shape: the fast code's dependent launches while
        the slow code is still drifting — and the whole graph beats the
        barrier schedule's wall clock."""
        fast = SleepCode(channel_type="sockets", cost_s=0.05)
        slow = SleepCode(channel_type="sockets", cost_s=0.30)
        try:
            order = []
            graph = TaskGraph()
            df = graph.add(
                "drift:fast",
                lambda: fast.evolve_model.async_(
                    1 | nbody_system.time
                ),
            )
            ds = graph.add(
                "drift:slow",
                lambda: slow.evolve_model.async_(
                    1 | nbody_system.time
                ),
            )
            graph.add(
                "exchange:fast", lambda: order.append("fast"),
                after=[df],
            )
            graph.add(
                "exchange:slow", lambda: order.append("slow"),
                after=[ds],
            )
            t0 = time.perf_counter()
            graph.run()
            elapsed = time.perf_counter() - t0
            # the fast exchange ran DURING the slow drift, and the
            # graph cost ~the slow chain, not the sum
            assert order == ["fast", "slow"]
            assert elapsed < 0.30 + 0.15
        finally:
            fast.stop()
            slow.stop()

    def test_timeout_cancels_and_names_nodes(self):
        code = SleepCode(channel_type="sockets", cost_s=1.0)
        try:
            graph = TaskGraph()
            graph.add(
                "hang",
                lambda: code.evolve_model.async_(
                    1 | nbody_system.time
                ),
            )
            graph.add("never", lambda: 1, after=["hang"])
            with pytest.raises(TimeoutError, match="hang"):
                graph.run(timeout=0.05)
            # cancelled NOW: tracker retired, pending table consistent
            assert code._inflight.inflight is None
            assert graph["hang"].state == "cancelled"
            assert graph["never"].state == "cancelled"
        finally:
            code.stop()


# -- cancellation under fire -------------------------------------------------


@pytest.mark.network
class TestCancelUnderFire:
    def test_cancel_in_flight_acked_as_abandoned(self):
        code = SleepCode(channel_type="sockets", cost_s=0.5)
        try:
            future = code.evolve_model.async_(1 | nbody_system.time)
            time.sleep(0.05)    # the worker is inside the sleep now
            assert future.cancel()
            assert code._inflight.inflight is None
            with pytest.raises(CancelledError):
                future.result()
            request = future._requests[0]
            assert request.cancel_ack is not None
            ack = request.cancel_ack.result(timeout=5)
            assert ack["state"] == "abandoned"
        finally:
            code.stop()

    def test_cancel_queued_call_acked_as_dequeued(self):
        """A call pipelined behind a running one is withdrawn before
        it ever executes."""
        channel = new_channel(
            "sockets", lambda: SleepInterface(cost_s=0.4)
        )
        try:
            channel.call("ensure_state", "RUN")
            running = channel.async_call("evolve_model", 1.0)
            queued = channel.async_call("evolve_model", 2.0)
            time.sleep(0.05)
            assert queued.cancel()
            ack = queued.cancel_ack.result(timeout=5)
            assert ack["state"] == "dequeued"
            running.result(timeout=5)
            # the dequeued call never ran: the clock stopped at 1.0
            assert channel.call("get_model_time") == 1.0
        finally:
            channel.stop()

    def test_cancel_racing_completing_reply_is_consistent(self):
        """Whatever wins the race, the outcome is coherent: cancel()
        True means the result is a CancelledError, False means the
        value arrived — never a hang, never a stranded entry."""
        channel = new_channel(
            "sockets", lambda: SleepInterface(cost_s=0.0)
        )
        try:
            channel.call("ensure_state", "RUN")
            wins, losses = 0, 0
            for step in range(30):
                request = channel.async_call(
                    "evolve_model", float(step)
                )
                if request.cancel():
                    wins += 1
                    with pytest.raises(CancelledError):
                        request.result(timeout=5)
                else:
                    losses += 1
                    assert request.result(timeout=5) == 0
            assert wins + losses == 30
            # the channel survived the storm
            assert channel.call("get_model_time") >= 0.0
        finally:
            channel.stop()

    def test_cancel_on_dead_channel_degrades_gracefully(self):
        code = SleepCode(
            channel_type="subprocess", cost_s=5.0,
            channel_options={"stop_timeout": 2.0},
        )
        future = code.evolve_model.async_(1 | nbody_system.time)
        os.kill(code.channel.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while not future.done() and time.monotonic() < deadline:
            time.sleep(0.01)    # reader notices the death
        # too late to cancel (the loss already resolved the request) —
        # but asking must not raise, and the future must be joinable
        assert future.cancel() is False
        with pytest.raises(Exception):
            future.result(timeout=5)
        code.shutdown()

    def test_cancel_before_reader_notices_death(self):
        """Cancelling a call whose worker just died but whose loss has
        not surfaced yet: the client-side withdraw wins, the doomed
        AMCX send is swallowed."""
        code = SleepCode(
            channel_type="subprocess", cost_s=5.0,
            channel_options={"stop_timeout": 2.0},
        )
        future = code.evolve_model.async_(1 | nbody_system.time)
        os.kill(code.channel.pid, signal.SIGKILL)
        # race the reader: either we withdraw first (True) or the
        # loss resolved it first (False); both must leave the code
        # unlocked and the future joinable
        future.cancel()
        with pytest.raises(Exception):
            future.result(timeout=5)
        assert code._inflight.inflight is None
        code.shutdown()

    def test_plain_v2_peer_degrades_to_client_side_abandon(self):
        channel = new_channel(
            "sockets", lambda: SleepInterface(cost_s=0.3),
            worker_capabilities=False,
        )
        try:
            assert "cancel" not in channel.wire_caps
            channel.call("ensure_state", "RUN")
            request = channel.async_call("evolve_model", 1.0)
            assert request.cancel()          # client-side only
            assert request.cancel_ack is None
            with pytest.raises(CancelledError):
                request.result(timeout=5)
            # the worker still answers eventually; the stray reply is
            # dropped and the channel keeps working
            assert channel.call("get_model_time") in (0.0, 1.0)
        finally:
            channel.stop()

    def test_v1_peer_degrades_to_client_side_abandon(self):
        channel = new_channel(
            "sockets", lambda: SleepInterface(cost_s=0.2),
            worker_max_version=1,
        )
        try:
            assert channel.wire_version == 1
            channel.call("ensure_state", "RUN")
            request = channel.async_call("evolve_model", 1.0)
            assert request.cancel()
            with pytest.raises(CancelledError):
                request.result(timeout=5)
        finally:
            channel.stop()

    def test_batched_call_cancel_before_flush(self):
        channel = new_channel(
            "sockets", lambda: SleepInterface(cost_s=0.0)
        )
        try:
            channel.call("ensure_state", "RUN")
            with channel.batch():
                keep = channel.async_call("get_model_time")
                drop = channel.async_call("evolve_model", 9.0)
                assert drop.cancel()         # withdrawn pre-flush
            assert keep.result(timeout=5) == 0.0
            with pytest.raises(CancelledError):
                drop.result(timeout=5)
            assert channel.call("get_model_time") == 0.0
        finally:
            channel.stop()

    def test_future_cancel_too_late_returns_false(self):
        future = Future.completed(3)
        assert future.cancel() is False
        assert future.result() == 3

    def test_future_cancel_runs_cleanup_once(self):
        cleanups = []
        code = SleepCode(channel_type="sockets", cost_s=0.3)
        try:
            future = code.evolve_model.async_(1 | nbody_system.time)
            base_cleanup = future._cleanup
            future._cleanup = lambda: cleanups.append(
                base_cleanup()
            )
            assert future.cancel()
            assert future.cancel() is False   # second is a no-op
            assert len(cleanups) == 1
        finally:
            code.stop()


class TestCancelOvertakesCall:
    """Regression: an AMCX frame can overtake its own call frame.

    ``cancel()`` fires between the client's pending-table insert and
    the call send (``_dispatch_call`` registers first, sends second),
    so the worker may see the cancel for an id it has never heard of.
    Pre-fix it acked "done" and then *executed* the call when the
    frame arrived — the client had already resolved the future as
    cancelled, so the call ran as a ghost.  The worker now tombstones
    unknown cancel targets and drops the late frame with a
    CancelledError error reply.
    """

    @staticmethod
    def _serve(interface):
        client, server = socket.socketpair()
        thread = threading.Thread(
            target=worker_loop, args=(interface, server), daemon=True
        )
        thread.start()
        wire = WireState(version=2)
        send_frame(client, ("hello", 0, 2, (), {"caps": {"cancel": True}}))
        ack = recv_frame(client, wire)
        assert ack[2]["caps"]["cancel"] is True
        return client, server, thread, wire

    def test_tombstoned_call_never_executes(self):
        calls = []

        class Iface:
            def ping(self):
                calls.append("ping")
                return "pong"

            def stop(self):
                return True

        client, server, thread, wire = self._serve(Iface())
        try:
            # the cancel arrives first: the worker has never seen id 7
            send_cancel_frame(client, 100, 7)
            ack = recv_frame(client, wire)
            assert ack == ("result", 100, {"cancelled": 7,
                                           "state": "done"})
            # the overtaken call frame lands: dropped, not executed
            send_frame_v2(client, ("call", 7, "ping", (), {}), wire)
            reply = recv_frame(client, wire)
            assert reply[:3] == ("error", 7, "CancelledError")
            assert calls == []
            # the tombstone is consumed; fresh ids run normally
            send_frame_v2(client, ("call", 8, "ping", (), {}), wire)
            assert recv_frame(client, wire) == ("result", 8, "pong")
            assert calls == ["ping"]
            send_frame_v2(client, ("call", 9, "stop", (), {}), wire)
            assert recv_frame(client, wire)[0] == "result"
            thread.join(timeout=5)
            assert not thread.is_alive()
        finally:
            client.close()
            server.close()

    def test_tombstones_are_bounded(self):
        """Cancels for long-gone ids must not grow worker state
        without bound (every completed call's cancel is "done")."""

        class Iface:
            def stop(self):
                return True

        client, server, thread, wire = self._serve(Iface())
        try:
            for target in range(200):
                send_cancel_frame(client, 1000 + target, target)
                assert recv_frame(client, wire)[2]["state"] == "done"
            # an id aged out of the tombstone window would execute if
            # its frame arrived now — but recent ones still must not
            send_frame_v2(client, ("call", 199, "stop", (), {}), wire)
            reply = recv_frame(client, wire)
            assert reply[:3] == ("error", 199, "CancelledError")
            send_frame_v2(client, ("call", 500, "stop", (), {}), wire)
            assert recv_frame(client, wire)[0] == "result"
            thread.join(timeout=5)
        finally:
            client.close()
            server.close()


@pytest.mark.network
class TestWaitAllTimeoutConsistency:
    def test_timed_out_futures_are_cancelled_not_stranded(self):
        """The wait_all(timeout=) fix: expired futures route through
        cancel(), so the pending table empties and the tracker
        unlocks immediately instead of whenever the worker answers."""
        code = SleepCode(channel_type="sockets", cost_s=0.8)
        try:
            future = code.evolve_model.async_(1 | nbody_system.time)
            with pytest.raises(TimeoutError, match="evolve_model"):
                wait_all([future], timeout=0.05)
            assert code._inflight.inflight is None
            with pytest.raises(CancelledError):
                future.result(timeout=5)
            # only the cancel ack may linger; it drains promptly
            deadline = time.monotonic() + 5.0
            while code.channel._pending and \
                    time.monotonic() < deadline:
                time.sleep(0.01)
            assert not code.channel._pending
        finally:
            code.stop()

    def test_uncancellable_members_still_abandoned(self):
        """Thread offloads cannot be withdrawn mid-run: they keep the
        pre-cancel abandon contract (retire when the call finishes)."""
        gate = threading.Event()
        calls = []

        def stepper(t_end):
            calls.append(t_end)
            gate.wait(5)
            return t_end

        future = Future.submit(stepper, 1.0)
        with pytest.raises(TimeoutError):
            wait_all([future], timeout=0.05)
        gate.set()
        with pytest.raises(CancelledError, match="abandoned"):
            future.result(timeout=5)
        assert calls == [1.0]


# -- RESTART fault policy ----------------------------------------------------


@pytest.mark.network
class TestRestartPolicy:
    def test_sigkilled_worker_finishes_run_with_restarted_worker(self):
        """The acceptance scenario: SIGKILL mid-evolve, RESTART
        respawns, the graph resumes and FINISHES."""
        code = SleepCode(
            channel_type="subprocess", cost_s=0.5,
            channel_options={"stop_timeout": 2.0},
        )
        try:
            graph = TaskGraph()
            graph.add(
                "evolve",
                lambda: code.evolve_model.async_(
                    1 | nbody_system.time
                ),
                code=code,
            )
            old_pid = code.channel.pid
            threading.Timer(
                0.15, lambda: os.kill(old_pid, signal.SIGKILL)
            ).start()
            results = graph.run(fault_policy=FaultPolicy.RESTART)
            assert graph["evolve"].state == "done"
            assert graph["evolve"].restarts == 1
            assert code.channel.pid != old_pid
            assert code.model_time.value_in(nbody_system.time) == 1.0
            assert "evolve" in results
        finally:
            code.stop()

    def test_restart_replays_unit_converted_parameters_and_state(
        self, converter
    ):
        """The replay satellite: parameters set through the proxy and
        the unit-converted particle mirror survive the respawn — the
        script sees the same SI state through a brand-new worker."""
        stars = new_plummer_model(12, convert_nbody=converter, rng=5)
        grav = PhiGRAPE(
            converter, channel_type="subprocess", eta=0.05,
            channel_options={"stop_timeout": 2.0},
        )
        try:
            grav.parameters.eta = 0.125
            grav.add_particles(stars)
            pos_si = grav.particles.position.value_in(units.m).copy()
            vel_si = grav.particles.velocity.value_in(
                units.m / units.s
            ).copy()
            old_pid = grav.channel.pid
            os.kill(old_pid, signal.SIGKILL)
            grav.restart_worker()
            assert grav.channel.pid != old_pid
            # proxy-set parameter replayed
            assert grav.parameters.eta == 0.125
            # the worker holds the SAME state in code units as the
            # original upload (unit conversion round-trips exactly)
            assert np.allclose(
                grav.channel.call("get_position"),
                grav._to_code(
                    grav.particles.position, grav._LENGTH_UNIT
                ),
            )
            # and the script still sees identical SI values
            assert np.allclose(
                grav.particles.position.value_in(units.m), pos_si
            )
            assert np.allclose(
                grav.particles.velocity.value_in(units.m / units.s),
                vel_si,
            )
            # the respawned worker is immediately evolvable
            grav.evolve_model(0.01 | units.Myr)
        finally:
            grav.shutdown()

    def test_restart_restores_model_clock(self):
        code = SleepCode(
            channel_type="subprocess", cost_s=0.05,
            channel_options={"stop_timeout": 2.0},
        )
        try:
            code.evolve_model(3 | nbody_system.time)
            os.kill(code.channel.pid, signal.SIGKILL)
            code.restart_worker()
            assert code.model_time.value_in(nbody_system.time) == 3.0
        finally:
            code.stop()

    def test_genuine_model_error_is_not_restarted(self):
        class Diverging:
            def restart_worker(self):
                raise AssertionError("must not be called")

            def evolve_model(self, _t):
                raise RuntimeError("model diverged")

        member = Diverging()
        graph = TaskGraph()
        graph.add(
            "evolve", lambda: member.evolve_model(1.0), code=member
        )
        with pytest.raises(AggregateRequestError,
                           match="model diverged"):
            graph.run(fault_policy=FaultPolicy.RESTART)

    def test_max_restarts_bounds_the_respawn_loop(self):
        code = SleepCode(
            channel_type="subprocess", cost_s=2.0,
            channel_options={"stop_timeout": 1.0},
        )
        try:
            def launch_and_kill():
                future = code.evolve_model.async_(
                    1 | nbody_system.time
                )
                threading.Timer(
                    0.1,
                    lambda pid=code.channel.pid:
                    os.kill(pid, signal.SIGKILL),
                ).start()
                return future

            graph = TaskGraph()
            graph.add("doomed", launch_and_kill, code=code)
            with pytest.raises(AggregateRequestError):
                graph.run(
                    fault_policy=FaultPolicy.RESTART, max_restarts=1
                )
            assert graph["doomed"].restarts == 1
        finally:
            code.shutdown()

    def test_completion_at_deadline_is_consumed_not_timed_out(self):
        """Events already delivered when the deadline expires are
        consumed: instantly-completing nodes finish under timeout=0
        instead of being declared hung."""
        graph = TaskGraph()
        a = graph.add("a", lambda: 1)
        graph.add("b", lambda: a.result + 1, after=[a])
        assert graph.run(timeout=0) == {"a": 1, "b": 2}

    def test_failed_respawn_does_not_strand_sibling_hung_nodes(self):
        """One worker's respawn failing during the timeout-grace
        restart must fail THAT node only: the sibling hung node is
        still cancelled/restarted and no tracker stays locked."""
        broken = SleepCode(channel_type="sockets", cost_s=1.5)
        healthy = SleepCode(channel_type="sockets", cost_s=1.5)
        broken.restart_worker = lambda: (_ for _ in ()).throw(
            RuntimeError("no replacement resource")
        )

        def unhang(_node):
            healthy.parameters.cost_s = 0.01

        try:
            graph = TaskGraph()
            graph.add(
                "broken",
                lambda: broken.evolve_model.async_(
                    1 | nbody_system.time
                ),
                code=broken,
            )
            graph.add(
                "healthy",
                lambda: healthy.evolve_model.async_(
                    1 | nbody_system.time
                ),
                code=healthy,
            )
            with pytest.raises(AggregateRequestError,
                               match="no replacement resource"):
                graph.run(
                    timeout=0.3, fault_policy=FaultPolicy.RESTART,
                    on_restart=unhang,
                )
            assert graph["broken"].state == "failed"
            assert graph["healthy"].state == "done"
            # neither code is left with a stranded transition
            assert broken._inflight.inflight is None
            assert healthy._inflight.inflight is None
        finally:
            broken.stop()
            healthy.stop()

    def test_hung_evolve_cancelled_and_restarted_on_timeout(self):
        """A hung (not dead) worker: the run's timeout cancels the
        call, RESTART respawns the worker, and the on_restart hook
        gets a chance to fix what made it hang."""
        code = SleepCode(
            channel_type="sockets", cost_s=1.5,
            channel_options={"stop_timeout": 3.0},
        )
        restarted = []

        def unhang(node):
            restarted.append(node.name)
            code.parameters.cost_s = 0.01

        try:
            graph = TaskGraph()
            graph.add(
                "hung",
                lambda: code.evolve_model.async_(
                    1 | nbody_system.time
                ),
                code=code,
            )
            results = graph.run(
                timeout=0.3, fault_policy=FaultPolicy.RESTART,
                on_restart=unhang,
            )
            assert restarted == ["hung"]
            assert graph["hung"].state == "done"
            assert "hung" in results
        finally:
            code.stop()


@pytest.mark.network
class TestGroupAndBridgeFaultPolicies:
    def test_group_ignore_policy_keeps_healthy_results(self):
        healthy = SleepCode(channel_type="sockets", cost_s=0.01)
        dead = SleepCode(channel_type="sockets", cost_s=0.01)
        dead.stop()
        group = EvolveGroup([healthy, dead])
        try:
            results = group.evolve(
                1 | nbody_system.time,
                fault_policy=FaultPolicy.IGNORE,
            )
            assert results[0] == 0      # healthy evolve returned
            assert results[1] is None   # dead member ignored
        finally:
            healthy.stop()

    def test_group_restart_policy_survives_sigkill(self):
        codes = [
            SleepCode(
                channel_type="subprocess", cost_s=0.4,
                channel_options={"stop_timeout": 2.0},
            )
            for _ in range(2)
        ]
        try:
            victim_pid = codes[0].channel.pid
            threading.Timer(
                0.1, lambda: os.kill(victim_pid, signal.SIGKILL)
            ).start()
            group = EvolveGroup(codes)
            group.evolve(
                1 | nbody_system.time,
                fault_policy=FaultPolicy.RESTART,
            )
            assert codes[0].channel.pid != victim_pid
            for code in codes:
                assert code.model_time.value_in(
                    nbody_system.time
                ) == 1.0
        finally:
            for code in codes:
                code.stop()

    def test_bridge_restart_policy_survives_sigkill_mid_drift(self):
        codes = [
            SleepCode(
                channel_type="subprocess", cost_s=0.4,
                channel_options={"stop_timeout": 2.0},
            )
            for _ in range(2)
        ]
        bridge = Bridge(
            timestep=1 | nbody_system.time,
            fault_policy=FaultPolicy.RESTART,
        )
        for code in codes:
            bridge.add_system(code)
        try:
            victim_pid = codes[1].channel.pid
            threading.Timer(
                0.1, lambda: os.kill(victim_pid, signal.SIGKILL)
            ).start()
            bridge.evolve_model(1 | nbody_system.time)
            assert codes[1].channel.pid != victim_pid
            assert bridge.drift_count == 1
        finally:
            bridge.stop()


# -- the bridge's DAG shape --------------------------------------------------


class TestBridgeGraphShape:
    def test_unkicked_provider_drift_waits_for_field_queries(
        self, converter
    ):
        """One-directional coupling with the provider used DIRECTLY
        (no CouplingField): the provider's drift must not overtake a
        sibling's pre-drift field query against its worker — the DAG
        must reproduce the barrier numerics in either registration
        order."""
        def build(order):
            stars = new_plummer_model(
                16, convert_nbody=converter, rng=7
            )
            sats = new_plummer_model(
                8, convert_nbody=converter, rng=8
            )
            galaxy = PhiGRAPE(converter, eta=0.1)
            cluster = PhiGRAPE(converter, eta=0.1)
            galaxy.add_particles(stars)
            cluster.add_particles(sats)
            bridge = Bridge(timestep=0.01 | units.Myr)
            if order == "provider-first":
                bridge.add_system(galaxy)
                bridge.add_system(cluster, [galaxy])
            else:
                bridge.add_system(cluster, [galaxy])
                bridge.add_system(galaxy)
            return bridge, cluster

        baselines = {}
        for use_async in (True, False):
            for order in ("provider-first", "provider-last"):
                bridge, cluster = build(order)
                bridge.use_async = use_async
                bridge.evolve_model(0.02 | units.Myr)
                pos = cluster.particles.position.value_in(
                    units.m
                ).copy()
                bridge.stop()
                if order in baselines:
                    assert np.allclose(
                        baselines[order], pos, rtol=1e-12
                    )
                else:
                    baselines[order] = pos
        # and the graph encodes the edge explicitly
        bridge, _cluster = build("provider-first")
        graph = bridge._step_graph(0.01 | units.Myr)
        provider_drift_deps = {
            dep.name for dep in graph["drift:PhiGRAPE"].deps
        }
        assert "kick1:PhiGRAPE#1:field" in provider_drift_deps
        bridge.stop()

    def test_kick2_depends_on_source_drifts_only(self, converter):
        """The per-edge structure: a system's second kick waits for
        its own drift and its field sources' drifts — nothing else."""
        from repro.codes import Fi

        stars = new_plummer_model(8, convert_nbody=converter, rng=1)
        a = PhiGRAPE(converter, eta=0.1)
        b = PhiGRAPE(converter, eta=0.1)
        c = PhiGRAPE(converter, eta=0.1)
        field = Fi(converter)
        for code in (a, b, c):
            code.add_particles(stars)
        bridge = Bridge(timestep=0.01 | units.Myr)
        # a is kicked by a field sourced from b; b by one from a;
        # c drifts uncoupled
        bridge.add_system(a, [CouplingField(field, [b])])
        bridge.add_system(b, [CouplingField(field, [a])])
        bridge.add_system(c)
        graph = bridge._step_graph(0.01 | units.Myr)
        names = {
            dep.name for dep in graph["kick2:PhiGRAPE:field"].deps
        }
        assert names == {"drift:PhiGRAPE", "drift:PhiGRAPE#1"}
        # the uncoupled system's drift gates nobody's second kick
        assert all(
            "PhiGRAPE#2" not in dep.name
            for node in graph.nodes.values() if "kick2" in node.name
            for dep in node.deps
        )
        assert graph["drift:PhiGRAPE#2"].deps == []
        for code in (a, b, c, field):
            code.stop()


# -- perfmodel critical-path accounting --------------------------------------


class TestDagCostModel:
    def _placement(self):
        from repro.jungle import (
            CostModel,
            IterationWorkload,
            Placement,
            make_lab_jungle,
        )

        jungle = make_lab_jungle()
        desktop = jungle.host("desktop")
        placement = Placement(coupler_host=desktop)
        for role in ("coupling", "gravity", "hydro", "se"):
            placement.assign(role, desktop, channel="direct")
        return CostModel(jungle), IterationWorkload(), placement

    def test_dag_schedule_charges_critical_path(self):
        model, workload, placement = self._placement()
        seq = model.iteration_time(workload, placement)
        par = model.iteration_time(
            workload, placement, overlap_drift=True
        )
        dag = model.iteration_time(
            workload, placement, schedule="dag"
        )
        assert dag["total_s"] < par["total_s"] < seq["total_s"]
        assert dag["schedule"] == "dag"
        assert dag["overlap_drift"] is True

    def test_unknown_schedule_rejected(self):
        model, workload, placement = self._placement()
        with pytest.raises(ValueError, match="unknown schedule"):
            model.iteration_time(
                workload, placement, schedule="magic"
            )

    def test_jungle_runner_selects_dag_from_bridge(self):
        from types import SimpleNamespace

        from repro.distributed import JungleRunner
        from repro.jungle import make_lab_jungle

        damuse = SimpleNamespace(jungle=make_lab_jungle())
        sim = SimpleNamespace(
            bridge=SimpleNamespace(use_async=True)
        )
        assert JungleRunner(sim, damuse).schedule == "dag"
        sim.bridge.use_async = False
        assert JungleRunner(sim, damuse).schedule == "barrier"
        # an explicit overlap override pins the historical barrier
        # accounting it used to select
        assert JungleRunner(
            sim, damuse, overlap_drift=True
        ).schedule == "barrier"
        assert JungleRunner(
            sim, damuse, schedule="dag"
        ).schedule == "dag"


# -- EvolveGroup contract preserved on the graph -----------------------------


class TestCesmStepGraph:
    def test_lone_exchange_error_surfaces_raw(self):
        """The overlap step keeps the serial branch's exception
        contract: a raising exchange() is not wrapped."""
        from repro.cesm import EarthSystemModel

        esm = EarthSystemModel(overlap_components=True)

        def broken_exchange():
            raise ValueError("regrid shape mismatch")

        esm.exchange = broken_exchange
        with pytest.raises(ValueError, match="regrid shape"):
            esm.step(5.0)


class TestGroupOnGraph:
    def test_lone_code_state_error_stays_bare(self):
        code = SleepCode()
        code.stop()
        group = EvolveGroup([code])
        with pytest.raises(CodeStateError, match="stopped"):
            group.evolve(1 | nbody_system.time)

    def test_duplicate_member_names_disambiguated(self):
        codes = [SleepCode(cost_s=0.0) for _ in range(3)]
        group = EvolveGroup(codes)
        try:
            results = group.evolve(1 | nbody_system.time)
            assert len(results) == 3
        finally:
            group.stop()
