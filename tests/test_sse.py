"""SSE stellar evolution tests (Hurley/Tout fits)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.sse import (
    SSEInterface,
    main_sequence_lifetime,
    remnant_mass,
    zams_luminosity,
    zams_radius,
)


class TestZamsFits:
    def test_solar_luminosity(self):
        # Tout et al. 1996: L(1 MSun) ~ 0.7 LSun at ZAMS
        assert zams_luminosity(1.0) == pytest.approx(0.70, rel=0.02)

    def test_solar_radius(self):
        assert zams_radius(1.0) == pytest.approx(0.89, rel=0.02)

    def test_luminosity_monotonic_in_mass(self):
        masses = np.linspace(0.2, 80.0, 200)
        lum = zams_luminosity(masses)
        assert np.all(np.diff(lum) > 0)

    def test_radius_increases_with_mass(self):
        assert zams_radius(10.0) > zams_radius(1.0) > zams_radius(0.3)

    def test_mass_luminosity_slope(self):
        # L ~ M^4 around a solar mass
        slope = np.log(zams_luminosity(2.0) / zams_luminosity(1.0)) \
            / np.log(2.0)
        assert 3.0 < slope < 5.0


class TestLifetimes:
    def test_solar_lifetime(self):
        # Hurley t_BGB(1 MSun) ~ 11.6 Gyr
        assert main_sequence_lifetime(1.0) == pytest.approx(
            11600.0, rel=0.05
        )

    def test_massive_star_short_lived(self):
        assert main_sequence_lifetime(25.0) < 10.0  # Myr

    @given(st.floats(min_value=0.1, max_value=90.0))
    def test_lifetime_decreases_with_mass(self, mass):
        assert main_sequence_lifetime(mass * 1.1) < \
            main_sequence_lifetime(mass)


class TestRemnants:
    def test_white_dwarf_below_8(self):
        assert remnant_mass(1.0) == pytest.approx(0.503, rel=0.01)

    def test_neutron_star(self):
        assert remnant_mass(15.0) == 1.4

    def test_black_hole(self):
        assert remnant_mass(40.0) == pytest.approx(10.0)

    @given(st.floats(min_value=0.3, max_value=100.0))
    def test_remnant_lighter_than_zams(self, mass):
        assert remnant_mass(mass) < mass


class TestSSEInterface:
    def test_new_particles_start_on_ms(self):
        sse = SSEInterface()
        sse.new_particle([1.0, 5.0])
        assert sse.get_stellar_type().tolist() == [1, 1]

    def test_rejects_nonpositive_mass(self):
        sse = SSEInterface()
        with pytest.raises(ValueError):
            sse.new_particle([-1.0])

    def test_evolution_stages(self):
        sse = SSEInterface()
        sse.new_particle([5.0])
        t_ms = main_sequence_lifetime(5.0)
        sse.evolve_model(0.5 * t_ms)
        assert sse.get_stellar_type()[0] == 1
        sse2 = SSEInterface()
        sse2.new_particle([5.0])
        sse2.evolve_model(1.05 * t_ms)
        assert sse2.get_stellar_type()[0] in (3, 4)
        sse3 = SSEInterface()
        sse3.new_particle([5.0])
        sse3.evolve_model(2.0 * t_ms)
        assert sse3.get_stellar_type()[0] == 11   # CO white dwarf

    def test_massive_star_becomes_neutron_star(self):
        sse = SSEInterface()
        sse.new_particle([12.0])
        sse.evolve_model(50.0)
        assert sse.get_stellar_type()[0] == 13
        assert sse.get_mass()[0] == pytest.approx(1.4)

    def test_very_massive_becomes_black_hole(self):
        sse = SSEInterface()
        sse.new_particle([40.0])
        sse.evolve_model(20.0)
        assert sse.get_stellar_type()[0] == 14

    def test_giant_loses_mass(self):
        sse = SSEInterface()
        sse.new_particle([5.0])
        t_ms = main_sequence_lifetime(5.0)
        sse.evolve_model(t_ms * 1.10)
        mass = sse.get_mass()[0]
        assert mass < 5.0
        assert mass > remnant_mass(5.0)

    def test_luminosity_rises_on_giant_branch(self):
        sse = SSEInterface()
        sse.new_particle([3.0])
        t_ms = main_sequence_lifetime(3.0)
        sse.evolve_model(t_ms * 0.9)
        l_ms = sse.get_luminosity()[0]
        sse.evolve_model(t_ms * 1.1)
        assert sse.get_luminosity()[0] > 10.0 * l_ms

    def test_cannot_evolve_backwards(self):
        sse = SSEInterface()
        sse.new_particle([1.0])
        sse.evolve_model(10.0)
        with pytest.raises(ValueError):
            sse.evolve_model(5.0)

    def test_get_state_tuple(self):
        sse = SSEInterface()
        sse.new_particle([1.0, 2.0])
        sse.evolve_model(1.0)
        mass, radius, lum, teff, stype = sse.get_state()
        assert len(mass) == 2
        assert np.all(teff > 3000)

    def test_temperature_solar(self):
        sse = SSEInterface()
        sse.new_particle([1.0])
        sse.evolve_model(0.1)
        # ZAMS sun: T_eff ~ 5600 K
        assert sse.get_temperature()[0] == pytest.approx(5600, rel=0.1)

    def test_time_of_next_supernova(self):
        sse = SSEInterface()
        sse.new_particle([1.0, 20.0])
        t_sn = sse.time_of_next_supernova()
        assert t_sn == pytest.approx(
            main_sequence_lifetime(20.0) * 1.15, rel=1e-6
        )

    def test_no_supernova_when_low_mass(self):
        sse = SSEInterface()
        sse.new_particle([1.0, 2.0])
        assert sse.time_of_next_supernova() == np.inf

    def test_delete_particle(self):
        sse = SSEInterface()
        ids = sse.new_particle([1.0, 2.0, 3.0])
        sse.delete_particle(ids[1])
        assert sse.get_number_of_particles() == 2

    def test_lookup_is_stateless_in_age(self):
        """SSE is a lookup: evolving to t directly or in steps agrees."""
        direct = SSEInterface()
        direct.new_particle([4.0])
        direct.evolve_model(120.0)
        stepped = SSEInterface()
        stepped.new_particle([4.0])
        for t in (30.0, 60.0, 90.0, 120.0):
            stepped.evolve_model(t)
        assert direct.get_mass()[0] == stepped.get_mass()[0]
        assert direct.get_luminosity()[0] == \
            stepped.get_luminosity()[0]

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=80.0),
        st.floats(min_value=0.1, max_value=15000.0),
    )
    def test_mass_never_increases(self, zams, age):
        sse = SSEInterface()
        sse.new_particle([zams])
        sse.evolve_model(age)
        assert sse.get_mass()[0] <= zams * (1 + 1e-12)
