"""Tests for the subprocess channel and channel-lifecycle fixes.

Covers the true off-process worker path (spawn, bootstrap, negotiated
wire versions, pipelining/batching), the worker-death fault paths
(killed child, crashing worker, failing constructor — all surfacing as
:class:`ConnectionLostError` with the child's exit code and stderr
tail, never a hang), the daemon's subprocess pilot mode, and the three
channel-lifecycle bugfixes (wedged-worker stop warning + idempotent
stop, per-factory kwarg validation in ``new_channel``, constructor
failure cleanup in ``SocketChannel``).
"""

import functools
import os
import signal
import threading
import time

import pytest

from repro.codes.base import CodeStateError
from repro.codes.testing import (
    CrashingInterface,
    FailingInterface,
    SleepCode,
    SleepInterface,
    WedgedStopInterface,
)
from repro.distributed import IbisDaemon
from repro.distributed.channel import DistributedChannel
from repro.rpc import (
    ConnectionLostError,
    ProtocolError,
    RemoteError,
    SocketChannel,
    SubprocessChannel,
    new_channel,
    wait_all,
)

pytestmark = pytest.mark.network

#: keep shutdown escalation fast in tests — none of these workers is
#: expected to need the full production timeouts
FAST = {"stop_timeout": 5.0, "kill_timeout": 5.0}


def _sleep_factory(cost_s=0.01):
    return functools.partial(SleepInterface, cost_s=cost_s)


@pytest.fixture
def channel():
    ch = SubprocessChannel(_sleep_factory(), **FAST)
    yield ch
    try:
        ch.stop()
    except ProtocolError:
        pass


class TestSubprocessChannel:
    def test_worker_is_another_process(self, channel):
        assert channel.pid != os.getpid()
        assert channel.worker_pid == channel.pid

    def test_call_roundtrip(self, channel):
        assert channel.call("get_model_time") == 0.0
        channel.call("evolve_model", 0.5)
        assert channel.call("get_model_time") == 0.5

    def test_wire_v2_negotiated(self, channel):
        assert channel.wire_version == 2

    def test_v1_worker_downgrades(self):
        ch = SubprocessChannel(
            _sleep_factory(), worker_max_version=1, **FAST
        )
        try:
            assert ch.wire_version == 1
            ch.call("evolve_model", 1.0)
            assert ch.call("get_model_time") == 1.0
        finally:
            ch.stop()

    def test_pipelined_async_calls(self, channel):
        reqs = [
            channel.async_call("get_parameter", "cost_s")
            for _ in range(8)
        ]
        assert wait_all(reqs) == [0.01] * 8

    def test_batched_mcall(self, channel):
        with channel.batch():
            a = channel.async_call("parameter_names")
            b = channel.async_call("get_model_time")
        assert a.result() == ["cost_s"]
        assert b.result() == 0.0

    def test_unknown_method_is_remote_error(self, channel):
        with pytest.raises(RemoteError):
            channel.call("no_such_method")

    def test_factory_registered(self):
        ch = new_channel("subprocess", _sleep_factory(), **FAST)
        try:
            assert isinstance(ch, SubprocessChannel)
        finally:
            ch.stop()

    def test_stop_is_idempotent(self):
        ch = SubprocessChannel(_sleep_factory(), **FAST)
        ch.stop()
        assert ch._proc.returncode == 0
        ch.stop()       # second stop: no-op, no error, no hang

    def test_calls_after_stop_raise(self):
        ch = SubprocessChannel(_sleep_factory(), **FAST)
        ch.stop()
        with pytest.raises(ProtocolError):
            ch.call("get_model_time")


class TestWorkerDeath:
    def test_constructor_failure_reported_and_reaped(self):
        with pytest.raises(RemoteError, match="refused to construct"):
            SubprocessChannel(
                functools.partial(FailingInterface), **FAST
            )

    def test_killed_child_fails_inflight_call(self):
        ch = SubprocessChannel(_sleep_factory(cost_s=30.0), **FAST)
        req = ch.async_call("evolve_model", 1.0)
        time.sleep(0.2)
        os.kill(ch.pid, signal.SIGKILL)
        with pytest.raises(ConnectionLostError) as excinfo:
            req.result(timeout=15)
        assert excinfo.value.returncode == -signal.SIGKILL
        # channel is dead: stop() reaps and re-surfaces the crash
        with pytest.raises(ConnectionLostError):
            ch.stop()
        ch.stop()       # and is idempotent afterwards

    def test_crash_carries_exit_code_and_stderr_tail(self):
        ch = SubprocessChannel(
            functools.partial(
                CrashingInterface, exit_code=9,
                stderr_message="sprocket failure in sector 7",
            ),
            **FAST,
        )
        req = ch.async_call("crash")
        with pytest.raises(ConnectionLostError) as excinfo:
            req.result(timeout=15)
        assert excinfo.value.returncode == 9
        assert "sector 7" in excinfo.value.stderr_tail
        assert "sector 7" in str(excinfo.value)
        with pytest.raises(ConnectionLostError, match="sector 7"):
            ch.stop()

    def test_orphan_reaper_terminates_children(self):
        from repro.rpc import subproc

        ch = SubprocessChannel(_sleep_factory(), **FAST)
        assert ch._proc.poll() is None
        subproc._reap_orphans()
        assert ch._proc.wait(timeout=10) is not None


class TestHighlevelOverSubprocess:
    def test_evolve_and_stop(self):
        from repro.units import nbody_system

        code = SleepCode(
            channel_type="subprocess", cost_s=0.01,
            channel_options=FAST,
        )
        code.evolve_model(1 | nbody_system.time)
        assert code.model_time.value_in(nbody_system.time) == 1.0
        code.stop()
        assert code.stopped

    def test_kill_mid_evolve_resyncs_and_shuts_down(self):
        from repro.units import nbody_system

        code = SleepCode(
            channel_type="subprocess", cost_s=30.0,
            channel_options=FAST,
        )
        future = code.evolve_model.async_(1 | nbody_system.time)
        time.sleep(0.2)
        assert code._inflight.inflight == "evolve_model"
        os.kill(code.channel.pid, signal.SIGKILL)
        with pytest.raises(ConnectionLostError):
            future.result(timeout=15)
        # the failed join retired the in-flight transition
        assert code._inflight.inflight is None
        # cleanup path: absorbs the crash, releases the code, no hang
        t0 = time.perf_counter()
        code.shutdown()
        assert time.perf_counter() - t0 < FAST["stop_timeout"] + \
            FAST["kill_timeout"] + 5.0
        assert code.stopped
        with pytest.raises(CodeStateError):
            code.evolve_model(2 | nbody_system.time)

    def test_exit_unwinding_never_masks_body_exception(self):
        """A crashed child makes stop() raise; during exception
        unwinding __exit__ must force the shutdown instead, so the
        body's error propagates and the code is released."""
        from repro.units import nbody_system

        with pytest.raises(ValueError, match="body failure"):
            with SleepCode(
                channel_type="subprocess", cost_s=30.0,
                channel_options=FAST,
            ) as code:
                future = code.evolve_model.async_(
                    1 | nbody_system.time
                )
                time.sleep(0.2)
                os.kill(code.channel.pid, signal.SIGKILL)
                with pytest.raises(ConnectionLostError):
                    future.result(timeout=15)
                raise ValueError("body failure")
        assert code.stopped


class TestDaemonSubprocessPilots:
    def test_daemon_mode_spawns_real_processes(self):
        with IbisDaemon(worker_mode="subprocess") as daemon:
            ch = DistributedChannel(_sleep_factory(), daemon=daemon)
            try:
                meta = ch._request(("list_workers",)).result()
                entry = meta[ch.worker_id]
                assert entry["mode"] == "subprocess"
                assert entry["pid"] not in (None, os.getpid())
                assert entry["code"] == "SleepInterface"
                ch.call("evolve_model", 0.25)
                assert ch.call("get_model_time") == 0.25
            finally:
                ch.stop()

    def test_per_channel_mode_overrides_daemon_default(self):
        with IbisDaemon() as daemon:       # thread-mode default
            ch = DistributedChannel(
                _sleep_factory(), daemon=daemon,
                worker_mode="subprocess",
            )
            try:
                meta = ch._request(("list_workers",)).result()
                assert meta[ch.worker_id]["mode"] == "subprocess"
            finally:
                ch.stop()

    def test_thread_mode_unchanged(self):
        with IbisDaemon() as daemon:
            ch = DistributedChannel(_sleep_factory(), daemon=daemon)
            try:
                meta = ch._request(("list_workers",)).result()
                assert meta[ch.worker_id]["mode"] == "thread"
                assert meta[ch.worker_id]["pid"] is None
            finally:
                ch.stop()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="worker mode"):
            IbisDaemon(worker_mode="carrier-pigeon")


class TestSocketStopLifecycle:
    """Satellite bugfix: wedged workers warn instead of leaking
    silently, and repeated stop() is idempotent."""

    def test_wedged_worker_stop_warns_naming_channel(self):
        ch = SocketChannel(
            functools.partial(WedgedStopInterface, wedge_s=2.0),
            stop_timeout=0.3,
        )
        with pytest.warns(RuntimeWarning, match="sockets channel"):
            ch.stop()

    def test_repeated_stop_is_idempotent(self):
        ch = SocketChannel(SleepInterface)
        ch.stop()
        t0 = time.perf_counter()
        ch.stop()       # no second remote stop, no join, no warning
        assert time.perf_counter() - t0 < 1.0

    def test_clean_stop_does_not_warn(self):
        import warnings as warnings_mod

        ch = SocketChannel(SleepInterface)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            ch.stop()


class TestChannelKwargValidation:
    """Satellite bugfix: unknown channel options raise a ValueError
    naming the channel type and keyword, not a bare TypeError."""

    def test_mpi_rejects_sockets_only_kwargs(self):
        with pytest.raises(ValueError, match="'mpi'.*worker_max_version"):
            new_channel("mpi", SleepInterface, worker_max_version=1)

    def test_error_lists_valid_options(self):
        with pytest.raises(ValueError, match="valid options"):
            new_channel("direct", SleepInterface, bogus=1)

    def test_valid_kwargs_still_accepted(self):
        ch = new_channel(
            "sockets", SleepInterface, worker_max_version=1
        )
        try:
            assert ch.wire_version == 1
        finally:
            ch.stop()

    def test_subprocess_rejects_unknown_kwargs(self):
        with pytest.raises(
            ValueError, match="'subprocess'.*'daemon'"
        ):
            new_channel("subprocess", SleepInterface, daemon=object())


class TestSocketConstructorCleanup:
    """Satellite bugfix: a failed SocketChannel constructor closes the
    listener and lets the worker thread exit instead of leaking both."""

    def _worker_threads(self):
        return [
            t for t in threading.enumerate()
            if t.name == "sockets-worker" and t.is_alive()
        ]

    def test_handshake_failure_leaks_nothing(self, monkeypatch):
        before = len(self._worker_threads())

        def _boom(self, max_version, capabilities=None):
            raise RuntimeError("handshake exploded")

        monkeypatch.setattr(
            SocketChannel, "_negotiate_hello", _boom
        )
        with pytest.raises(RuntimeError, match="handshake exploded"):
            SocketChannel(SleepInterface)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if len(self._worker_threads()) <= before:
                break
            time.sleep(0.05)
        assert len(self._worker_threads()) <= before
