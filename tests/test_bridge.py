"""Bridge (kick-drift-kick) coupling tests."""

import numpy as np
import pytest

from repro.codes import Fi, Gadget, PhiGRAPE
from repro.coupling import Bridge, CouplingField
from repro.ic import new_plummer_gas_model, new_plummer_model
from repro.units import Quantity, nbody_system, units


@pytest.fixture
def converter():
    return nbody_system.nbody_to_si(
        200.0 | units.MSun, 0.5 | units.parsec
    )


def make_two_system_bridge(converter, n_stars=24, n_gas=96, dt=0.02):
    stars = new_plummer_model(n_stars, convert_nbody=converter, rng=0)
    gas = new_plummer_gas_model(n_gas, convert_nbody=converter, rng=1)
    gravity = PhiGRAPE(converter, eta=0.1)
    hydro = Gadget(converter, n_neighbours=12)
    coupling = Fi(converter)
    gravity.add_particles(stars)
    hydro.add_particles(gas)
    bridge = Bridge(timestep=Quantity(dt, units.Myr))
    bridge.add_system(
        gravity, [CouplingField(coupling, [hydro])]
    )
    bridge.add_system(
        hydro, [CouplingField(coupling, [gravity])]
    )
    return bridge, gravity, hydro, coupling


class TestCouplingField:
    def test_field_matches_source_system(self, converter):
        stars = new_plummer_model(64, convert_nbody=converter, rng=2)
        gravity = PhiGRAPE(converter)
        gravity.add_particles(stars)
        coupling = Fi(converter, theta=0.3)
        field = CouplingField(coupling, [gravity])
        point = np.array([[3.0, 0.0, 0.0]]) * 3.086e16 | units.m
        acc_field = field.get_gravity_at_point(
            0.01 | units.parsec, Quantity(point.number, units.m)
        ).value_in(units.m / units.s ** 2)
        acc_direct = gravity.get_gravity_at_point(
            0.01 | units.parsec, Quantity(point.number, units.m)
        ).value_in(units.m / units.s ** 2)
        assert np.allclose(acc_field, acc_direct, rtol=0.05)
        gravity.stop()
        coupling.stop()

    def test_field_combines_sources(self, converter):
        stars = new_plummer_model(16, convert_nbody=converter, rng=3)
        a = PhiGRAPE(converter)
        a.add_particles(stars)
        coupling = Fi(converter)
        single = CouplingField(coupling, [a])
        double = CouplingField(coupling, [a, a])
        pt = Quantity(np.array([[1e17, 0.0, 0.0]]), units.m)
        acc1 = single.get_gravity_at_point(
            0.01 | units.parsec, pt).value_in(units.m / units.s ** 2)
        acc2 = double.get_gravity_at_point(
            0.01 | units.parsec, pt).value_in(units.m / units.s ** 2)
        assert np.allclose(2.0 * acc1, acc2, rtol=1e-6)
        a.stop()
        coupling.stop()


class TestBridge:
    def test_requires_systems(self):
        bridge = Bridge(timestep=Quantity(0.01, units.Myr))
        with pytest.raises(RuntimeError):
            bridge.evolve_model(0.1 | units.Myr)

    def test_time_advances_by_steps(self, converter):
        bridge, gravity, hydro, coupling = make_two_system_bridge(
            converter
        )
        bridge.evolve_model(0.06 | units.Myr)
        assert bridge.time.value_in(units.Myr) == pytest.approx(
            0.06, rel=1e-6
        )
        assert bridge.drift_count == 3
        assert bridge.kick_count == 6
        bridge.stop()

    def test_energy_roughly_conserved(self, converter):
        bridge, gravity, hydro, coupling = make_two_system_bridge(
            converter
        )
        e0 = (
            bridge.kinetic_energy() + bridge.potential_energy()
        ).value_in(units.J)
        bridge.evolve_model(0.08 | units.Myr)
        e1 = (
            bridge.kinetic_energy() + bridge.potential_energy()
        ).value_in(units.J)
        assert abs((e1 - e0) / e0) < 0.1
        bridge.stop()

    def test_async_and_sync_agree(self, converter):
        results = []
        for use_async in (True, False):
            bridge, gravity, hydro, coupling = make_two_system_bridge(
                converter
            )
            bridge.use_async = use_async
            bridge.evolve_model(0.04 | units.Myr)
            results.append(
                gravity.particles.position.value_in(units.m).copy()
            )
            bridge.stop()
        assert np.allclose(results[0], results[1], rtol=1e-12)

    def test_kick_changes_velocities(self, converter):
        bridge, gravity, hydro, coupling = make_two_system_bridge(
            converter
        )
        v0 = gravity.particles.velocity.value_in(units.kms).copy()
        bridge.kick_systems(0.01 | units.Myr)
        v1 = gravity.particles.velocity.value_in(units.kms)
        assert not np.allclose(v0, v1)
        bridge.stop()

    def test_combined_particles_view(self, converter):
        bridge, gravity, hydro, coupling = make_two_system_bridge(
            converter, n_stars=10, n_gas=20
        )
        assert len(bridge.particles) == 30
        bridge.stop()

    def test_gas_feels_star_gravity(self, converter):
        """A cold gas blob far from a star cluster must accelerate
        toward it through the coupling field."""
        stars = new_plummer_model(32, convert_nbody=converter, rng=4)
        gravity = PhiGRAPE(converter, eta=0.1)
        gravity.add_particles(stars)
        gas = new_plummer_gas_model(
            32, convert_nbody=converter, rng=5
        )
        gas.position = gas.position * 0.05 + Quantity(
            np.array([3.0, 0.0, 0.0]) * 1.5e16, units.m
        )
        gas.u = gas.u * 0.01
        hydro = Gadget(converter, n_neighbours=8, self_gravity=False)
        hydro.add_particles(gas)
        coupling = Fi(converter)
        bridge = Bridge(timestep=Quantity(0.02, units.Myr))
        bridge.add_system(hydro, [CouplingField(coupling, [gravity])])
        bridge.add_system(gravity, [])
        bridge.evolve_model(0.04 | units.Myr)
        vx = hydro.particles.velocity.value_in(units.kms)[:, 0]
        assert vx.mean() < 0.0   # falling toward the origin
        bridge.stop()
