"""SC11 visualization pipeline tests (paper Figs. 8/9)."""

import pytest

from repro.jungle import make_sc11_jungle
from repro.viz import RenderPipeline


@pytest.fixture
def pipeline():
    jungle = make_sc11_jungle()
    return jungle, RenderPipeline(
        jungle, "SARA", "Seattle (SC11)", render_nodes=16
    )


class TestCapacity:
    def test_display_lightpath_exists(self, pipeline):
        jungle, pipe = pipeline
        assert (
            "2x transatlantic 10G lightpath (display)"
            in jungle.network.link_names()
        )

    def test_render_cluster_sustains_target_fps(self, pipeline):
        jungle, pipe = pipeline
        assert pipe.render_fps() >= pipe.target_fps

    def test_display_link_sustains_4k(self, pipeline):
        """The demo's whole point of the 2x10G paths: raw-ish 4K video
        fits, which the shared 1G AMUSE path could never carry."""
        jungle, pipe = pipeline
        assert pipe.network_fps() >= pipe.target_fps
        assert pipe.achievable_fps() == pipe.target_fps
        assert pipe.bottleneck() == "target"

    def test_1g_path_would_bottleneck(self):
        """Re-run the demo without the display lightpaths: the video
        would have to share the 1G AMUSE path and the frame rate
        collapses — the reason the lightpaths were provisioned."""
        jungle = make_sc11_jungle()
        jungle.network.graph.remove_edge("SARA", "Seattle (SC11)")
        pipe = RenderPipeline(
            jungle, "SARA", "Seattle (SC11)", render_nodes=16
        )
        assert pipe.network_fps() < pipe.target_fps
        assert pipe.bottleneck() == "network"

    def test_fewer_render_nodes_bottleneck(self, pipeline):
        jungle, _ = pipeline
        weak = RenderPipeline(
            jungle, "SARA", "Seattle (SC11)", render_nodes=2
        )
        assert weak.bottleneck() == "render"
        assert weak.achievable_fps() == pytest.approx(
            weak.render_fps()
        )


class TestStreaming:
    def test_stream_records_video_traffic(self, pipeline):
        jungle, pipe = pipeline
        process = pipe.stream(duration_s=2.0)
        jungle.env.run()
        assert process.value == pipe.frames_streamed
        assert pipe.frames_streamed == int(2.0 * pipe.target_fps)
        video = jungle.network.traffic.matrix("video")
        assert video[("SARA", "Seattle (SC11)")] == \
            pipe.frames_streamed * pipe.frame_bytes

    def test_video_does_not_pollute_ipl_view(self, pipeline):
        jungle, pipe = pipeline
        pipe.stream(duration_s=1.0)
        jungle.env.run()
        assert jungle.network.traffic.matrix("ipl") == {}

    def test_report(self, pipeline):
        jungle, pipe = pipeline
        report = pipe.report()
        assert report["bottleneck"] == "target"
        assert report["frame_mbytes"] == pytest.approx(12.44, rel=0.01)
