"""Cost model tests — the Sec. 6.2 calibration (E1 shape assertions)."""

import pytest

from repro.jungle import (
    CostModel,
    IterationWorkload,
    Placement,
    make_desktop_jungle,
    make_lab_jungle,
)

PAPER = {"cpu": 353.0, "local-gpu": 89.0, "remote-gpu": 84.0,
         "jungle": 62.4}


def scenario_times(workload=None):
    w = workload or IterationWorkload(n_stars=1000, n_gas=10000)
    out = {}

    j1 = make_desktop_jungle(with_gpu=False)
    p1 = Placement(coupler_host=j1.host("desktop"))
    for role in ("coupling", "gravity", "hydro", "se"):
        p1.assign(role, j1.host("desktop"), channel="direct")
    out["cpu"] = CostModel(j1).iteration_time(w, p1)

    j2 = make_desktop_jungle(with_gpu=True)
    p2 = Placement(coupler_host=j2.host("desktop"))
    for role in ("coupling", "gravity", "hydro", "se"):
        p2.assign(role, j2.host("desktop"), channel="direct")
    out["local-gpu"] = CostModel(j2).iteration_time(w, p2)

    j3 = make_lab_jungle()
    p3 = Placement(coupler_host=j3.host("desktop"))
    p3.assign("coupling", j3.host("LGM (LU)-node00"), channel="ibis")
    for role in ("gravity", "hydro", "se"):
        p3.assign(role, j3.host("desktop"), channel="direct")
    out["remote-gpu"] = CostModel(j3).iteration_time(w, p3)

    j4 = make_lab_jungle()
    p4 = Placement(coupler_host=j4.host("desktop"))
    p4.assign("coupling", j4.host("DAS-4 (TUD)-node00"), nodes=2,
              channel="ibis")
    p4.assign("gravity", j4.host("LGM (LU)-node00"), channel="ibis")
    p4.assign("hydro", j4.host("DAS-4 (UvA)-node00"), nodes=8,
              channel="ibis")
    p4.assign("se", j4.host("DAS-4 (UvA)-node01"), channel="ibis")
    out["jungle"] = CostModel(j4).iteration_time(w, p4)
    return out


@pytest.fixture(scope="module")
def scenarios():
    return {k: v["total_s"] for k, v in scenario_times().items()}


class TestPaperCalibration:
    def test_ordering_matches_paper(self, scenarios):
        assert scenarios["cpu"] > scenarios["local-gpu"] \
            > scenarios["remote-gpu"] > scenarios["jungle"]

    @pytest.mark.parametrize("name", sorted(PAPER))
    def test_absolute_within_band(self, scenarios, name):
        """Modeled value within 15% of the paper's measurement."""
        assert scenarios[name] == pytest.approx(PAPER[name], rel=0.15)

    def test_gpu_speedup_factor(self, scenarios):
        # paper: 353/89 = 3.97
        assert scenarios["cpu"] / scenarios["local-gpu"] == \
            pytest.approx(3.97, rel=0.15)

    def test_remote_gpu_small_gain(self, scenarios):
        # paper: remote Tesla beats the local GeForce by ~6%
        gain = 1.0 - scenarios["remote-gpu"] / scenarios["local-gpu"]
        assert 0.0 < gain < 0.25

    def test_jungle_best_but_not_magic(self, scenarios):
        ratio = scenarios["jungle"] / scenarios["local-gpu"]
        # paper: 62.4/89 = 0.70
        assert ratio == pytest.approx(0.70, rel=0.2)


class TestModelInternals:
    def test_coupling_dominates_cpu_scenario(self):
        times = scenario_times()
        br = times["cpu"]["breakdown"]
        assert br["coupling"]["compute_s"] > br["hydro"]["compute_s"]
        assert br["coupling"]["compute_s"] > br["gravity"]["compute_s"]

    def test_hydro_dominates_gpu_scenario(self):
        times = scenario_times()
        br = times["local-gpu"]["breakdown"]
        assert br["hydro"]["compute_s"] > br["coupling"]["compute_s"]

    def test_overlap_drift_faster(self):
        w = IterationWorkload()
        j = make_desktop_jungle(with_gpu=True)
        p = Placement(coupler_host=j.host("desktop"))
        for role in ("coupling", "gravity", "hydro", "se"):
            p.assign(role, j.host("desktop"), channel="direct")
        model = CostModel(j)
        seq = model.iteration_time(w, p, overlap_drift=False)
        par = model.iteration_time(w, p, overlap_drift=True)
        assert par["total_s"] < seq["total_s"]

    def test_workload_scales_with_n(self):
        small = IterationWorkload(n_stars=100, n_gas=1000)
        big = IterationWorkload(n_stars=1000, n_gas=10000)
        _, w_small = small.work_units("gravity")
        _, w_big = big.work_units("gravity")
        assert w_big == pytest.approx(100.0 * w_small)  # N^2

    def test_parallel_efficiency_decreasing(self):
        j = make_desktop_jungle()
        model = CostModel(j)
        effs = [model.parallel_efficiency(n) for n in (1, 2, 4, 8)]
        assert effs[0] == 1.0
        assert all(a > b for a, b in zip(effs, effs[1:], strict=False))

    def test_gpu_preferred_when_available(self):
        j = make_desktop_jungle(with_gpu=True)
        model = CostModel(j)
        rate, device = model.device_rate(
            j.host("desktop"), "tree", prefer_gpu=True
        )
        assert device == "gpu"

    def test_busy_time_recorded(self):
        j = make_desktop_jungle(with_gpu=True)
        model = CostModel(j)
        w = IterationWorkload()
        model.compute_time(w, "coupling", j.host("desktop"))
        busy = j.network.traffic.host_busy_s
        assert busy[("desktop", "gpu")] > 0

    def test_comm_time_includes_latency_and_volume(self):
        j = make_lab_jungle()
        model = CostModel(j)
        w = IterationWorkload()
        t = model.comm_time(
            w, "coupling", j.host("LGM (LU)-node00"),
            j.host("desktop"), "ibis",
        )
        latency = j.network.latency("VU desktop", "LGM (LU)")
        assert t > w.round_trips("coupling") * 2 * latency

    def test_unknown_role_rejected(self):
        with pytest.raises(KeyError):
            IterationWorkload().work_units("renderer")
