"""High-level code wrapper tests: units at the boundary, mirrors."""

import numpy as np
import pytest

from repro.codes import SSE, Fi, Gadget, Octgrav, PhiGRAPE
from repro.ic import new_plummer_gas_model, new_plummer_model
from repro.units import nbody_system, units


@pytest.fixture
def converter():
    return nbody_system.nbody_to_si(
        1000.0 | units.MSun, 1.0 | units.parsec
    )


@pytest.fixture
def stars(converter):
    return new_plummer_model(32, convert_nbody=converter, rng=0)


class TestGravityWrapper:
    def test_add_particles_mirrors_keys(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        assert np.array_equal(grav.particles.key, stars.key)
        grav.stop()

    def test_units_converted_on_boundary(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        mass_nbody = grav.channel.call("get_mass")
        assert mass_nbody.sum() == pytest.approx(1.0)
        grav.stop()

    def test_evolve_and_pull(self, converter, stars):
        grav = PhiGRAPE(converter, eta=0.05)
        grav.add_particles(stars)
        before = stars.position.value_in(units.m).copy()
        grav.evolve_model(0.1 | units.Myr)
        after = grav.particles.position.value_in(units.m)
        assert not np.allclose(before, after)
        assert grav.model_time.value_in(units.Myr) == pytest.approx(
            0.1, rel=1e-6
        )
        grav.stop()

    def test_energies_in_si(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        ke = grav.kinetic_energy.value_in(units.J)
        pe = grav.potential_energy.value_in(units.J)
        assert ke > 0 and pe < 0
        assert grav.total_energy.value_in(units.J) == pytest.approx(
            ke + pe, rel=1e-9
        )
        grav.stop()

    def test_virial_ratio_of_plummer(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        q = -grav.kinetic_energy.value_in(units.J) / \
            grav.potential_energy.value_in(units.J)
        # code-side softening (eps2) shifts the PE slightly
        assert q == pytest.approx(0.5, rel=1e-2)
        grav.stop()

    def test_generic_mode_without_converter(self):
        p = new_plummer_model(16, rng=1)
        grav = PhiGRAPE()
        grav.add_particles(p)
        assert grav.kinetic_energy.number == pytest.approx(
            0.25, rel=1e-6
        )
        grav.stop()

    def test_push_masses(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        grav.particles.mass = grav.particles.mass * 0.5
        grav.push_masses()
        assert grav.channel.call("get_mass").sum() == pytest.approx(
            0.5
        )
        grav.stop()

    def test_kick(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        dv = np.ones((32, 3)) | units.kms
        grav.kick(dv)
        vel = grav.channel.call("get_velocity")
        expected = converter.to_nbody(1.0 | units.kms).number
        assert vel[:, 0].mean() == pytest.approx(expected, rel=1e-2)
        grav.stop()

    def test_gravity_at_point_quantity(self, converter, stars):
        grav = PhiGRAPE(converter)
        grav.add_particles(stars)
        acc = grav.get_gravity_at_point(
            0.01 | units.parsec, stars.position
        )
        assert acc.unit.powers == (
            units.m / units.s ** 2).base_form().powers
        grav.stop()

    def test_parameters_proxy(self, converter):
        grav = PhiGRAPE(converter, eta=0.123)
        assert grav.parameters.eta == 0.123
        with pytest.raises(AttributeError):
            grav.parameters.nonexistent
        grav.stop()

    def test_channel_type_sockets(self, converter, stars):
        grav = PhiGRAPE(converter, channel_type="sockets", eta=0.05)
        grav.add_particles(stars)
        grav.evolve_model(0.02 | units.Myr)
        assert grav.channel.kind == "sockets"
        grav.stop()


class TestHydroWrapper:
    def test_add_gas_with_internal_energy(self, converter):
        gas = new_plummer_gas_model(64, convert_nbody=converter, rng=2)
        hydro = Gadget(converter)
        hydro.add_particles(gas)
        assert hydro.particles.u.value_in(
            units.J / units.kg).min() > 0
        hydro.stop()

    def test_inject_energy(self, converter):
        gas = new_plummer_gas_model(64, convert_nbody=converter, rng=2)
        hydro = Gadget(converter)
        hydro.add_particles(gas)
        e0 = hydro.thermal_energy.value_in(units.J)
        hydro.inject_energy([0, 1], 1e10 | units.J / units.kg)
        assert hydro.thermal_energy.value_in(units.J) > e0
        hydro.stop()

    def test_evolve_pulls_u(self, converter):
        gas = new_plummer_gas_model(64, convert_nbody=converter, rng=2)
        hydro = Gadget(converter)
        hydro.add_particles(gas)
        hydro.evolve_model(0.01 | units.Myr)
        assert hydro.particles.u.value_in(
            units.J / units.kg).shape == (64,)
        hydro.stop()


class TestSSEWrapper:
    def test_stellar_state_units(self):
        se = SSE()
        p = new_plummer_model(4, rng=3)
        p.mass = np.array([1.0, 5.0, 12.0, 30.0]) | units.MSun
        se.add_particles(p)
        se.evolve_model(30.0 | units.Myr)
        assert se.particles.radius.unit.powers == units.m.powers
        assert se.particles.temperature.value_in(units.K).min() > 0
        types = np.asarray(se.particles.stellar_type)
        assert types[3] == 14      # 30 MSun -> black hole by 30 Myr
        se.stop()

    def test_time_of_next_supernova_quantity(self):
        se = SSE()
        p = new_plummer_model(2, rng=4)
        p.mass = np.array([9.0, 1.0]) | units.MSun
        se.add_particles(p)
        t_sn = se.time_of_next_supernova()
        assert 20.0 < t_sn.value_in(units.Myr) < 50.0
        se.stop()


class TestMultiKernelEquivalence:
    def test_octgrav_vs_fi_same_field(self, converter, stars):
        fields = []
        for cls in (Octgrav, Fi):
            code = cls(converter, theta=0.5)
            code.add_particles(stars)
            acc = code.get_gravity_at_point(
                0.01 | units.parsec, stars.position
            )
            fields.append(acc.value_in(units.m / units.s ** 2))
            code.stop()
        assert np.allclose(fields[0], fields[1], rtol=1e-8)
