"""Negative fixture: exercises every construct the rules look at —
nested locks, a frame magic, an shm allocation, a reader loop — with
every invariant intact.  The checker must report nothing here.
"""

import threading
from multiprocessing.shared_memory import SharedMemory

MAGIC_OK = b"OKAY"


def _emit(magic, payload):
    return magic + payload


def pack(payload):
    return _emit(MAGIC_OK, payload)


def unpack(frame):
    if frame[:4] == MAGIC_OK:
        return frame[4:]
    return None


class Pipeline:
    def __init__(self):
        self._order_a = threading.Lock()
        self._order_b = threading.Lock()
        self._segment = SharedMemory(create=True, size=64)
        self._latest = None
        self._running = True

    def transfer(self):
        # every path takes the locks in the same order: acyclic
        with self._order_a:
            with self._order_b:
                return True

    def peek(self):
        with self._order_a:
            return self._latest

    def _reader_loop(self):
        while self._running:
            frame = unpack(self._segment.buf.tobytes())
            self._store(frame)

    def _store(self, frame):
        with self._order_b:
            self._latest = frame

    def close(self):
        self._segment.close()
        self._segment.unlink()
