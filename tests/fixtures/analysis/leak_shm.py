"""Seeded-bug fixture: a POSIX shared-memory segment allocated with no
unlink/close path anywhere in its owning class — the segment outlives
the process.  Never imported; parsed by the checker only.
"""

from multiprocessing.shared_memory import SharedMemory


class LeakyArena:
    def __init__(self, size):
        self._segment = SharedMemory(create=True, size=size)

    def slot(self):
        return self._segment.buf
