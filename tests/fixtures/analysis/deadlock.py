"""Seeded-bug fixture: a classic lock-order cycle plus a blocking
acquisition inside a frame-send critical section.  Never imported —
the checker parses it; tests/test_analysis.py asserts the lock-order
rule flags both defects.
"""

import threading


class Ledger:
    def __init__(self):
        self._accounts = threading.Lock()
        self._audit_log = threading.Lock()
        self._send_lock = threading.Lock()

    def transfer(self):
        # one thread orders accounts -> audit_log ...
        with self._accounts:
            with self._audit_log:
                return True

    def audit(self):
        # ... while another orders audit_log -> accounts: deadlock
        with self._audit_log:
            with self._accounts:
                return True

    def flush_frame(self):
        # the wire invariant: nothing else may be acquired while a
        # partial frame owns the socket
        with self._send_lock:
            with self._audit_log:
                return True
