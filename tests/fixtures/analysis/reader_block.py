"""Seeded-bug fixture: a reader loop that (transitively) blocks on a
future — the self-deadlock-with-a-timeout pattern the reader-blocking
rule exists to catch.  Never imported; parsed by the checker only.
"""


class BlockingChannel:
    def __init__(self):
        self._pending = {}
        self._running = True

    def _reader_loop(self):
        while self._running:
            reply = self._next_reply()
            self._deliver(reply)

    def _next_reply(self):
        return self._pending.popitem()

    def _deliver(self, reply):
        # blocking on the reader thread: the reply this waits for can
        # only be delivered by the very thread now waiting
        return reply.result()
