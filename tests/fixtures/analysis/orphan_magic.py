"""Seeded-bug fixture: a frame magic constant with neither an encoder
nor a decoder — a frame type that can never actually cross the wire.
Never imported; parsed by the checker only.
"""

MAGIC_USED = b"USED"
MAGIC_ORPHAN = b"ORFN"


def _emit(magic, payload):
    return magic + payload


def pack(payload):
    return _emit(MAGIC_USED, payload)


def unpack(frame):
    if frame[:4] == MAGIC_USED:
        return frame[4:]
    return None
