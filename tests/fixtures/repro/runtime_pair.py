"""Lockwatch fixture: two locks with one static order (first ->
second).  Lives under a ``repro/`` directory because the runtime
watcher only instruments locks created from repro source paths.  This
one IS imported (with the watcher installed) by the lockwatch tests.
"""

import threading


class Pair:
    def __init__(self):
        self._first = threading.Lock()
        self._second = threading.Lock()

    def forward(self):
        with self._first:
            with self._second:
                return True
