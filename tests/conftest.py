"""Test-harness hooks.

``REPRO_LOCKWATCH=1`` installs the runtime lock-order watcher before
any code under test creates its locks; the observed acquisition edges
are dumped to ``REPRO_LOCKWATCH_OUT`` (default ``lockwatch.json``) at
interpreter exit and cross-validated against the static lock-order
graph by ``python -m repro.analysis --lockwatch-report`` — see the
static-analysis CI lane.
"""

import os

if os.environ.get("REPRO_LOCKWATCH") == "1":
    from repro.analysis import lockwatch

    if not os.environ.get("REPRO_LOCKWATCH_OUT"):
        os.environ["REPRO_LOCKWATCH_OUT"] = "lockwatch.json"
    lockwatch.install()
