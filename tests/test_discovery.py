"""Automatic resource discovery tests (paper Sec. 4.3 requirement 5)."""

import pytest

from repro.distributed.discovery import (
    candidate_hosts,
    discover_placement,
)
from repro.jungle import (
    IterationWorkload,
    make_desktop_jungle,
    make_lab_jungle,
    make_sc11_jungle,
)


class TestCandidates:
    def test_gpu_roles_prefer_gpu_hosts(self):
        jungle = make_lab_jungle()
        candidates = candidate_hosts(jungle, "gravity")
        gpu_sites = {
            host.site for host, _ in candidates if host.has_gpu
        }
        assert "LGM (LU)" in gpu_sites
        assert "DAS-4 (TUD)" in gpu_sites

    def test_hydro_gets_multinode_option(self):
        jungle = make_lab_jungle()
        candidates = candidate_hosts(jungle, "hydro")
        assert any(nodes == 8 for _, nodes in candidates)

    def test_allowed_sites_filter(self):
        jungle = make_lab_jungle()
        candidates = candidate_hosts(
            jungle, "se", allowed_sites={"DAS-4 (UvA)"}
        )
        assert {host.site for host, _ in candidates} == {"DAS-4 (UvA)"}


class TestDiscovery:
    def test_lab_jungle_recovers_paper_placement(self):
        """On the Fig. 12 resources the best placement is the paper's:
        coupling on a GPU, gravity on the Tesla, hydro multi-node."""
        jungle = make_lab_jungle()
        placement, predicted = discover_placement(
            jungle, jungle.host("desktop")
        )
        assert placement.host("coupling").has_gpu
        assert placement.host("gravity").has_gpu
        # hydro moves off the desktop onto a cluster node (the poor
        # small-N scaling makes 1 vs 8 nodes a tie in the cost model,
        # so either node count is acceptable)
        assert placement.host("hydro").site != "VU desktop"
        # at least as good as the hand-built jungle scenario (~58 s)
        assert predicted["total_s"] <= 60.0

    def test_desktop_only_falls_back_to_local(self):
        jungle = make_desktop_jungle(with_gpu=True)
        placement, predicted = discover_placement(
            jungle, jungle.host("desktop")
        )
        assert {placement.host(r).name for r in placement.roles()} \
            == {"desktop"}

    def test_discovery_beats_naive_placement(self):
        """The discovered placement must beat running everything on
        the client machine."""
        from repro.jungle import CostModel, Placement

        jungle = make_sc11_jungle()
        laptop = jungle.host("laptop")
        discovered, predicted = discover_placement(jungle, laptop)
        naive = Placement(coupler_host=laptop)
        for role in ("coupling", "gravity", "hydro", "se"):
            naive.assign(role, laptop, channel="direct")
        naive_cost = CostModel(jungle).iteration_time(
            IterationWorkload(), naive
        )
        assert predicted["total_s"] < naive_cost["total_s"]

    def test_respects_allowed_sites(self):
        jungle = make_lab_jungle()
        placement, _ = discover_placement(
            jungle, jungle.host("desktop"),
            allowed_sites={"DAS-4 (UvA)", "VU desktop"},
        )
        used = {placement.host(r).site for r in placement.roles()}
        assert used <= {"DAS-4 (UvA)", "VU desktop"}

    def test_impossible_roles_raise(self):
        jungle = make_desktop_jungle()
        with pytest.raises(ValueError, match="no suitable"):
            discover_placement(
                jungle, jungle.host("desktop"), allowed_sites=set()
            )

    def test_capacity_feasibility(self):
        """Discovery never over-subscribes a site with multi-node
        reservations (single-node roles may share a machine, like the
        paper's desktop scenarios)."""
        jungle = make_lab_jungle()
        placement, _ = discover_placement(
            jungle, jungle.host("desktop")
        )
        demand = {}
        for role in placement.roles():
            nodes = placement.nodes(role)
            if nodes > 1:
                site = placement.host(role).site
                demand[site] = demand.get(site, 0) + nodes
        for site_name, wanted in demand.items():
            assert wanted <= len(
                jungle.sites[site_name].compute_hosts
            )
