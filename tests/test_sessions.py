"""Multi-session daemon tests: isolation, warm pool, admission
control, accounting, idle reaping, deprecation shims, CLI."""

import os
import subprocess
import sys
import threading
import time
import types
import warnings

import pytest

import repro.distributed.channel as channel_mod
from repro.codes import PhiGRAPE
from repro.codes.testing import ArrayEchoInterface, SleepInterface
from repro.distributed import (
    DistributedChannel,
    IbisDaemon,
    Session,
    connect,
)
from repro.distributed.session import (
    AdmissionController,
    WarmWorkerPool,
)
from repro.rpc import (
    TRANSPORT_STAT_KEYS,
    DirectChannel,
    ProtocolError,
    RemoteError,
    SocketChannel,
    merge_transport_stats,
)
from repro.rpc.subproc import SubprocessChannel, _child_env
from repro.units import nbody_system, units

pytestmark = pytest.mark.network


@pytest.fixture(scope="module")
def daemon():
    d = IbisDaemon()
    d.start()
    yield d
    d.shutdown()


# -- session lifecycle and isolation ----------------------------------------


class TestSessionLifecycle:
    def test_connect_grants_distinct_sessions(self, daemon):
        with connect(daemon, name="alice") as s1, \
                connect(daemon, name="bob") as s2:
            assert isinstance(s1, Session)
            assert s1.id != s2.id
            assert s1.token != s2.token
            assert s1.status()["session"]["name"] == "alice"

    def test_code_places_pilot_and_accounts(self, daemon):
        with connect(daemon) as session:
            ch = session.code(ArrayEchoInterface)
            assert ch.session_id == session.id
            assert ch.call("scale", 3.0, 4.0) == 12.0
            info = session.status()["session"]
            assert list(info["workers"]) == [ch.worker_id]
            acct = info["accounting"]
            assert acct["calls"] >= 1
            assert acct["bytes_in"] > 0
            assert acct["bytes_out"] > 0
            assert acct["compute_s"] >= 0.0

    def test_community_code_through_session(self, daemon):
        conv = nbody_system.nbody_to_si(
            1000.0 | units.MSun, 1.0 | units.parsec
        )
        with connect(daemon) as session:
            gravity = session.code(PhiGRAPE, conv)
            assert gravity.channel.session_id == session.id
            assert gravity.channel.worker_id in \
                session.status()["session"]["workers"]

    def test_sessions_cannot_see_each_others_pilots(self, daemon):
        with connect(daemon) as s1, connect(daemon) as s2:
            ch1 = s1.code(ArrayEchoInterface)
            ch2 = s2.code(ArrayEchoInterface)
            # each session lists only its own pilots
            assert list(s1.status()["session"]["workers"]) == \
                [ch1.worker_id]
            assert list(s2.status()["session"]["workers"]) == \
                [ch2.worker_id]
            # addressing the other tenant's worker id fails
            with pytest.raises(RemoteError):
                s2._link._request(
                    ("call", ch1.worker_id, "scale", (1.0, 1.0), {},
                     s2.id)
                ).result(timeout=10)
            # forging the other tenant's session id fails too: the
            # frame sid must match the hello-authenticated session
            with pytest.raises(RemoteError) as err:
                s2._link._request(
                    ("call", ch1.worker_id, "scale", (1.0, 1.0), {},
                     s1.id)
                ).result(timeout=10)
            assert err.value.exc_class == "ProtocolError"

    def test_second_connection_joins_via_token(self, daemon):
        with connect(daemon) as session:
            ch1 = session.code(ArrayEchoInterface)
            # a separate TCP connection presenting the token lands in
            # the same namespace (this is how every pilot channel of a
            # session shares its accounting)
            ch2 = DistributedChannel(
                ArrayEchoInterface, session=session,
            )
            info = session.status()["session"]
            assert set(info["workers"]) == \
                {ch1.worker_id, ch2.worker_id}
            ch2.stop()

    def test_bad_join_token_is_rejected(self, daemon):
        fake = types.SimpleNamespace(
            address=tuple(daemon.address), token="forged-token"
        )
        with pytest.raises(RemoteError):
            channel_mod._DaemonLink(
                address=daemon.address, session=fake,
            )

    def test_max_sessions_limit(self):
        with IbisDaemon(max_sessions=1) as d:
            with connect(d):
                with pytest.raises(RemoteError):
                    connect(d)
            # released sessions free the slot: the empty session is
            # dropped when its last connection goes away
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                try:
                    connect(d).close()
                    break
                except RemoteError:
                    time.sleep(0.02)
            else:
                pytest.fail("session slot never freed")

    def test_close_session_stops_pilots(self):
        with IbisDaemon() as d:
            session = connect(d)
            ch = session.code(ArrayEchoInterface)
            assert ch.call("scale", 2.0, 2.0) == 4.0
            session.close()
            with pytest.raises(ProtocolError):
                session.echo(b"x")
            assert not d._sessions

    def test_closed_session_rejects_code(self, daemon):
        session = connect(daemon)
        session.close()
        with pytest.raises(ProtocolError):
            session.code(ArrayEchoInterface)

    def test_old_style_channels_are_isolated_sessions(self, daemon):
        # pre-session entry point: each direct channel gets its own
        # implicit single-tenant session
        a = DistributedChannel(
            ArrayEchoInterface, daemon=daemon, _from_session=True,
        )
        b = DistributedChannel(
            ArrayEchoInterface, daemon=daemon, _from_session=True,
        )
        try:
            assert list(
                a._request(("list_workers",)).result()
            ) == [a.worker_id]
            assert list(
                b._request(("list_workers",)).result()
            ) == [b.worker_id]
        finally:
            a.stop()
            b.stop()


# -- warm pool ---------------------------------------------------------------


class TestWarmPool:
    def test_warm_and_cold_results_identical(self):
        with IbisDaemon(warm_pool=1) as d:
            assert d.warm_pool.ready(1, timeout=30)
            with connect(d) as session:
                warm = session.code(
                    ArrayEchoInterface, channel_type="subprocess"
                )
                cold = session.code(
                    ArrayEchoInterface, channel_type="subprocess"
                )
                assert warm.call("checksum", list(range(64))) == \
                    cold.call("checksum", list(range(64)))
                info = session.status()["session"]
                acct = info["accounting"]
                assert acct["warm_hits"] == 1
                assert acct["cold_spawns"] == 1
                flags = {
                    meta["warm"]
                    for meta in info["workers"].values()
                }
                assert flags == {True, False}

    def test_pool_refills_after_claim(self):
        pool = WarmWorkerPool(1, preload=[])
        try:
            assert pool.ready(1, timeout=30)
            first = pool.claim()
            assert first is not None
            assert pool.ready(1, timeout=30)  # background refill
            first.activate(ArrayEchoInterface)
            assert first.call("scale", 2.0, 8.0) == 16.0
            first.stop()
        finally:
            pool.stop()
        assert pool.claim() is None          # stopped pool never serves

    def test_dead_parked_worker_is_skipped(self):
        pool = WarmWorkerPool(1, preload=[])
        try:
            assert pool.ready(1, timeout=30)
            with pool._lock:
                parked = pool._idle[0]
            parked._proc.kill()
            parked._proc.wait()
            claimed = pool.claim()
            # the dead child was detected: either the claim found the
            # freshly refilled healthy worker or (pool momentarily
            # empty) reported a miss — it NEVER hands out a corpse
            if claimed is not None:
                assert claimed.alive()
                claimed.stop()
        finally:
            pool.stop()

    def test_warm_channel_discard_is_quick(self):
        ch = SubprocessChannel(warm=True)
        start = time.monotonic()
        ch.stop()
        assert time.monotonic() - start < 5.0
        assert not ch.alive()


# -- admission control -------------------------------------------------------


class TestAdmission:
    def test_fifo_within_session_round_robin_across(self):
        admission = AdmissionController(slots=1)
        admission.acquire("X")              # occupy the only slot
        order = []
        lock = threading.Lock()

        def waiter(sid, label):
            admission.acquire(sid)
            with lock:
                order.append(label)
            admission.release()

        threads = []
        # arrival order: A1, A2, A3, B1 (sleep fixes queue order)
        for sid, label in [("A", "A1"), ("A", "A2"), ("A", "A3"),
                           ("B", "B1")]:
            t = threading.Thread(target=waiter, args=(sid, label))
            t.start()
            threads.append(t)
            time.sleep(0.05)
        admission.release()                 # X frees the slot
        for t in threads:
            t.join(timeout=10)
        # FIFO within A; round-robin interleaves B despite arriving
        # last — one chatty session cannot starve another
        assert order == ["A1", "B1", "A2", "A3"]

    def test_overload_flag_and_queue_delay(self):
        admission = AdmissionController(slots=1, warn_load=0.8)
        delay, overloaded = admission.acquire("A")
        assert not overloaded               # idle daemon: no warning
        result = {}

        def queued():
            result["grant"] = admission.acquire("B")

        t = threading.Thread(target=queued)
        t.start()
        time.sleep(0.15)
        admission.release()
        t.join(timeout=10)
        delay, overloaded = result["grant"]
        assert overloaded                   # slot was busy: load 1.0
        assert delay >= 0.1
        admission.release()

    def test_close_cancels_waiters_and_drains(self):
        admission = AdmissionController(slots=1)
        admission.acquire("A")
        errors = []

        def waiter():
            try:
                admission.acquire("B")
            except RuntimeError as exc:
                errors.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.1)

        def finish():
            time.sleep(0.2)
            admission.release()

        threading.Thread(target=finish).start()
        assert admission.close(drain_timeout=5.0)   # drained in bound
        t.join(timeout=10)
        assert len(errors) == 1
        with pytest.raises(RuntimeError):
            admission.acquire("C")

    def test_acquire_timeout(self):
        admission = AdmissionController(slots=1)
        admission.acquire("A")
        with pytest.raises(TimeoutError):
            admission.acquire("B", timeout=0.1)
        admission.release()

    def test_daemon_accounts_queueing_under_load(self):
        with IbisDaemon(max_active=1) as d:
            with connect(d) as s1, connect(d) as s2:
                ch1 = s1.code(SleepInterface, cost_s=0.2)
                ch2 = s2.code(SleepInterface, cost_s=0.2)
                threads = [
                    threading.Thread(
                        target=ch.call, args=("evolve_model", 0.1)
                    )
                    for ch in (ch1, ch2) for _ in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                total_queued = sum(
                    s.status()["session"]["accounting"]["queue_s"]
                    for s in (s1, s2)
                )
                warned = sum(
                    s.status()["session"]["accounting"]
                    ["queue_warnings"]
                    for s in (s1, s2)
                )
                assert total_queued > 0.0
                assert warned >= 1


# -- idle reaping ------------------------------------------------------------


class TestIdleReaping:
    def test_idle_reap_frees_shm_segments(self):
        before = set(os.listdir("/dev/shm"))
        with IbisDaemon(idle_timeout=0.4) as d:
            session = connect(d)
            ch = session.code(ArrayEchoInterface, channel_type="shm")
            assert ch.call("scale", 2.0, 4.0) == 8.0
            assert set(os.listdir("/dev/shm")) - before  # segments live
            deadline = time.monotonic() + 15
            while d.reaped_sessions == 0 \
                    and time.monotonic() < deadline:
                time.sleep(0.05)
            assert d.reaped_sessions >= 1
            # the pilot (and its /dev/shm segments) are gone
            assert set(os.listdir("/dev/shm")) <= before
            with pytest.raises(RemoteError):
                ch.call("scale", 1.0, 1.0)
            session._closed = True           # daemon side already gone
            session._link.close()

    def test_busy_session_is_not_reaped(self):
        with IbisDaemon(idle_timeout=0.3) as d:
            with connect(d) as session:
                ch = session.code(ArrayEchoInterface)
                for _ in range(8):
                    ch.call("scale", 1.0, 1.0)   # activity: touch()
                    time.sleep(0.1)
                assert d.reaped_sessions == 0
                assert ch.call("scale", 3.0, 3.0) == 9.0


# -- deterministic shutdown --------------------------------------------------


class TestShutdownDrain:
    def test_shutdown_drains_inflight_call(self):
        d = IbisDaemon(max_active=1)
        d.start()
        session = connect(d)
        ch = session.code(SleepInterface, cost_s=0.5)
        result = {}

        def call():
            try:
                result["value"] = ch.call("evolve_model", 0.1)
            except Exception as exc:  # noqa: BLE001 - inspected below
                result["error"] = exc

        t = threading.Thread(target=call)
        t.start()
        time.sleep(0.15)                     # call is now in-flight
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            d.shutdown()
        t.join(timeout=30)
        # the drain let the in-flight call finish — no torn reply
        assert result.get("value") == 0
        stray = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
        ]
        assert stray == []

    def test_concurrent_shutdown_callers_wait_for_teardown(self):
        """Regression: a shutdown() racing another used to return
        immediately for the loser, while the winner was still draining
        — "shutdown() returned" did not mean "the daemon is down".
        Now every caller blocks until the teardown completes."""
        d = IbisDaemon(max_active=1)
        d.start()
        session = connect(d)
        ch = session.code(SleepInterface, cost_s=0.5)
        result = {}

        def call():
            try:
                result["value"] = ch.call("evolve_model", 0.1)
            except Exception as exc:  # noqa: BLE001 - inspected below
                result["error"] = exc

        t = threading.Thread(target=call)
        t.start()
        time.sleep(0.15)                     # call is now in-flight
        barrier = threading.Barrier(2)
        observed = {}

        def shut(name):
            barrier.wait()
            d.shutdown()
            # the moment ANY caller returns, the drain must be over:
            # the in-flight call has already been answered
            observed[name] = (
                "value" in result or "error" in result
            )

        racers = [
            threading.Thread(target=shut, args=(name,))
            for name in ("winner", "loser")
        ]
        for racer in racers:
            racer.start()
        for racer in racers:
            racer.join(timeout=30)
        t.join(timeout=30)
        assert observed == {"winner": True, "loser": True}
        assert result.get("value") == 0
        assert not d.running

    def test_shutdown_before_start_returns_immediately(self):
        d = IbisDaemon()
        started = time.monotonic()
        d.shutdown()                         # nothing to wait for
        assert time.monotonic() - started < 1.0

    def test_shutdown_frame_from_client(self):
        d = IbisDaemon()
        d.start()
        session = connect(d)
        assert session._link._request(("shutdown",)).result(
            timeout=10
        ) is True
        deadline = time.monotonic() + 10
        while d.running and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not d.running
        d.shutdown()                          # idempotent


# -- deprecation shims -------------------------------------------------------


class TestDeprecationShims:
    def test_direct_construction_warns_exactly_once(self, daemon):
        channel_mod._DEPRECATION_SEEN.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            a = DistributedChannel(
                ArrayEchoInterface, daemon=daemon
            )
            b = DistributedChannel(
                ArrayEchoInterface, daemon=daemon
            )
        a.stop()
        b.stop()
        messages = [
            str(w.message) for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(messages) == 1
        assert "connect()" in messages[0]

    def test_daemon_host_port_kwargs_warn_and_work(self, daemon):
        channel_mod._DEPRECATION_SEEN.clear()
        host, port = daemon.address
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ch = DistributedChannel(
                ArrayEchoInterface, daemon_host=host,
                daemon_port=port,
            )
        try:
            assert ch.call("scale", 2.0, 4.0) == 8.0
        finally:
            ch.stop()
        kwarg_warns = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "daemon_host" in str(w.message)
        ]
        assert len(kwarg_warns) == 1

    def test_session_path_does_not_warn(self, daemon):
        channel_mod._DEPRECATION_SEEN.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with connect(daemon) as session:
                ch = session.code(ArrayEchoInterface)
                assert ch.call("scale", 1.0, 5.0) == 5.0
        assert not [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]


# -- unified transport stats -------------------------------------------------


class TestTransportStats:
    def _assert_canonical(self, stats):
        assert set(stats) == set(TRANSPORT_STAT_KEYS)

    def test_every_channel_type_shares_the_keys(self, daemon):
        direct = DirectChannel(ArrayEchoInterface)
        self._assert_canonical(direct.transport_stats)
        direct.stop()

        sock = SocketChannel(ArrayEchoInterface)
        sock.call("scale", 1.0, 1.0)
        self._assert_canonical(sock.transport_stats)
        assert sock.transport_stats["bytes_received"] > 0
        assert sock.transport_stats["frames_received"] > 0
        sock.stop()

        with connect(daemon) as session:
            ch = session.code(ArrayEchoInterface)
            ch.call("scale", 1.0, 1.0)
            self._assert_canonical(ch.transport_stats)
            merged = session.status()["client_transport"]
            assert merged["bytes_sent"] > 0
            assert merged["bytes_received"] > 0
            assert merged["channel_count"] >= 2

    def test_stopped_pilots_stay_in_merged_stats(self, daemon):
        """The closed-pilot accumulator: ``status()`` keeps the
        transport stats of pilots that have since been stopped, so
        merged totals never go backwards over a session's lifetime."""
        with connect(daemon) as session:
            ch1 = session.code(ArrayEchoInterface)
            ch2 = session.code(ArrayEchoInterface)
            for _ in range(3):
                ch1.call("scale", 2.0, 2.0)
            ch2.call("scale", 1.0, 1.0)
            live = session.status()["client_transport"]
            ch1.stop()
            after_stop = session.status()["client_transport"]
            assert after_stop["bytes_sent"] >= live["bytes_sent"]
            assert after_stop["frames_sent"] >= live["frames_sent"]
            assert after_stop["channel_count"] == \
                live["channel_count"]
            # the surviving pilot still accumulates on top
            ch2.call("scale", 3.0, 3.0)
            final = session.status()["client_transport"]
            assert final["bytes_sent"] > after_stop["bytes_sent"]
            ch2.stop()
            assert session.status()["client_transport"][
                "bytes_sent"] >= final["bytes_sent"]

    def test_merge_transport_stats(self):
        merged = merge_transport_stats([
            {"channel": "a", "bytes_sent": 3, "frames_sent": 1,
             "codec": "zlib"},
            {"channel": "b", "bytes_sent": 4, "bytes_received": 2,
             "shm": True},
        ])
        assert merged["bytes_sent"] == 7
        assert merged["bytes_received"] == 2
        assert merged["channels"] == ["a", "b"]
        assert merged["codecs"] == ["zlib"]
        assert merged["shm"] is True
        assert merged["channel_count"] == 2


# -- daemon CLI --------------------------------------------------------------


class TestDaemonCli:
    def test_version_flag(self):
        from repro import __version__

        out = subprocess.run(
            [sys.executable, "-m", "repro.distributed.daemon",
             "--version"],
            env=_child_env(), capture_output=True, text=True,
            timeout=60,
        )
        assert out.returncode == 0
        assert __version__ in out.stdout

    def test_cli_serves_sessions(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.distributed.daemon",
             "--port", "0", "--max-sessions", "4"],
            env=_child_env(), stdout=subprocess.PIPE, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "listening on" in line
            address = line.strip().rsplit(" ", 1)[-1]
            with connect(address, name="cli-test") as session:
                assert session.echo(b"ping") == b"ping"
                ch = session.code(ArrayEchoInterface)
                assert ch.call("scale", 6.0, 7.0) == 42.0
                assert session.status()["daemon"]["max_sessions"] == 4
            shutdown = connect(address)
            shutdown._link._request(("shutdown",)).result(timeout=10)
            shutdown._link.close()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
