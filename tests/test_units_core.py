"""Unit and Quantity algebra tests (repro.units.core)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.units import IncompatibleUnitsError, Quantity, units
from repro.units.core import NONE_UNIT, to_quantity


class TestUnitAlgebra:
    def test_base_unit_identity(self):
        assert units.m == units.m
        assert units.m != units.s

    def test_named_symbols(self):
        assert repr(units.MSun) == "MSun"
        assert repr(units.km) == "km"

    def test_multiplication_combines_powers(self):
        momentum = units.kg * units.m / units.s
        assert momentum.powers[0] == 1
        assert momentum.powers[1] == 1
        assert momentum.powers[2] == -1

    def test_scaled_unit_from_number(self):
        minute = 60 * units.s
        assert minute.factor == pytest.approx(60.0)
        assert minute.powers == units.s.powers

    def test_division_by_number(self):
        half_m = units.m / 2
        assert half_m.factor == pytest.approx(0.5)

    def test_rtruediv_number(self):
        hz = 1 / units.s
        assert hz.powers == (units.s ** -1).powers

    def test_power_fractional(self):
        side = (units.m ** 2) ** 0.5
        assert side.powers == units.m.powers

    def test_units_are_immutable(self):
        with pytest.raises(AttributeError):
            units.m.factor = 2.0

    def test_units_hashable(self):
        assert len({units.m, units.km, 1000 * units.m}) == 2

    def test_conversion_factor(self):
        assert units.km.conversion_factor_to(units.m) == 1000.0

    def test_conversion_factor_incompatible(self):
        with pytest.raises(IncompatibleUnitsError):
            units.km.conversion_factor_to(units.s)

    def test_dimensionless(self):
        assert (units.m / units.m).is_dimensionless
        assert not units.m.is_dimensionless

    def test_repr_of_compound(self):
        text = repr(units.kg * units.m / units.s ** 2)
        assert "kg" in text and "m" in text


class TestQuantityConstruction:
    def test_pipe_scalar(self):
        q = 5.0 | units.m
        assert q.value_in(units.m) == 5.0

    def test_pipe_list_becomes_array(self):
        q = [1.0, 2.0] | units.m
        assert isinstance(q.number, np.ndarray)

    def test_pipe_ndarray(self):
        q = np.arange(4.0) | units.s
        assert q.shape == (4,)

    def test_cannot_restack_quantities(self):
        with pytest.raises(TypeError):
            (1.0 | units.m) | units.m

    def test_to_quantity_wraps_numbers(self):
        q = to_quantity(3.0)
        assert q.unit is NONE_UNIT


class TestQuantityArithmetic:
    def test_add_same_unit(self):
        assert ((1 | units.m) + (2 | units.m)).value_in(units.m) == 3

    def test_add_converts(self):
        total = (1.0 | units.km) + (500.0 | units.m)
        assert total.value_in(units.m) == pytest.approx(1500.0)

    def test_add_incompatible_raises(self):
        with pytest.raises(IncompatibleUnitsError):
            (1 | units.m) + (1 | units.s)

    def test_add_plain_number_raises(self):
        with pytest.raises(IncompatibleUnitsError):
            (1 | units.m) + 1.0

    def test_dimensionless_plus_number(self):
        q = (3.0 | units.none) + 1.0
        assert float(q) == pytest.approx(4.0)

    def test_subtract(self):
        assert ((3 | units.m) - (1 | units.m)).value_in(units.m) == 2

    def test_rsub(self):
        q = 0.0 | units.m
        result = (1.0 | units.km) - q
        assert result.value_in(units.km) == pytest.approx(1.0)

    def test_multiply_combines_units(self):
        e = (2.0 | units.kg) * (3.0 | units.m / units.s) ** 2
        assert e.value_in(units.J) == pytest.approx(18.0)

    def test_divide(self):
        v = (10.0 | units.m) / (2.0 | units.s)
        assert v.value_in(units.m / units.s) == pytest.approx(5.0)

    def test_scalar_multiply(self):
        assert (2 * (3.0 | units.m)).value_in(units.m) == 6.0

    def test_negation_abs(self):
        q = -(3.0 | units.m)
        assert q.value_in(units.m) == -3.0
        assert abs(q).value_in(units.m) == 3.0

    def test_pow(self):
        a = (2.0 | units.m) ** 3
        assert a.value_in(units.m ** 3) == pytest.approx(8.0)

    def test_sqrt(self):
        q = (9.0 | units.m ** 2).sqrt()
        assert q.value_in(units.m) == pytest.approx(3.0)

    def test_rtruediv(self):
        f = 1.0 / (0.5 | units.s)
        assert f.value_in(units.Hz) == pytest.approx(2.0)

    def test_float_cast_requires_dimensionless(self):
        with pytest.raises(TypeError):
            float(1.0 | units.m)


class TestQuantityComparison:
    def test_ordering_converts(self):
        assert (1.0 | units.km) > (500.0 | units.m)
        assert (1.0 | units.m) <= (1.0 | units.m)

    def test_eq_different_dimension_false(self):
        assert not ((1.0 | units.m) == (1.0 | units.s))

    def test_eq_converted(self):
        assert (1.0 | units.km) == (1000.0 | units.m)

    def test_hash_consistent_with_eq(self):
        assert hash(1.0 | units.km) == hash(1000.0 | units.m)


class TestVectorQuantity:
    def test_indexing_and_len(self):
        q = np.arange(5.0) | units.m
        assert len(q) == 5
        assert q[2].value_in(units.m) == 2.0

    def test_setitem(self):
        q = np.zeros(3) | units.m
        q[1] = 5.0 | units.m
        assert q.number[1] == 5.0

    def test_setitem_requires_quantity(self):
        q = np.zeros(3) | units.m
        with pytest.raises(TypeError):
            q[0] = 1.0

    def test_iteration_yields_quantities(self):
        q = np.arange(3.0) | units.s
        values = [item.value_in(units.s) for item in q]
        assert values == [0.0, 1.0, 2.0]

    def test_sum_mean_min_max(self):
        q = np.array([1.0, 2.0, 3.0]) | units.m
        assert q.sum().value_in(units.m) == 6.0
        assert q.mean().value_in(units.m) == 2.0
        assert q.min().value_in(units.m) == 1.0
        assert q.max().value_in(units.m) == 3.0

    def test_lengths_rowwise(self):
        q = np.array([[3.0, 4.0, 0.0]]) | units.m
        assert q.lengths().value_in(units.m)[0] == pytest.approx(5.0)

    def test_reshape_flatten(self):
        q = (np.arange(6.0) | units.m).reshape((2, 3))
        assert q.shape == (2, 3)
        assert q.flatten().shape == (6,)


FINITE = st.floats(
    min_value=-1e12, max_value=1e12,
    allow_nan=False, allow_infinity=False,
)


class TestUnitProperties:
    @given(FINITE)
    def test_conversion_round_trip(self, value):
        q = value | units.km
        back = q.in_(units.m).in_(units.km)
        assert back.value_in(units.km) == pytest.approx(
            value, rel=1e-12, abs=1e-9
        )

    @given(FINITE, FINITE)
    def test_addition_commutes(self, a, b):
        qa, qb = a | units.m, b | units.m
        assert (qa + qb).value_in(units.m) == pytest.approx(
            (qb + qa).value_in(units.m), rel=1e-12, abs=1e-9
        )

    @given(FINITE)
    def test_mixed_unit_addition_associates_with_factor(self, a):
        left = (a | units.km) + (1.0 | units.m)
        assert left.value_in(units.m) == pytest.approx(
            a * 1000.0 + 1.0, rel=1e-12, abs=1e-6
        )

    @given(st.integers(min_value=-4, max_value=4))
    def test_power_laws(self, n):
        unit = units.m ** n
        assert unit.powers[1] == n
