"""Wire protocol v2 tests: out-of-band framing, negotiation, batching."""

import io
import socket
import threading

import numpy as np
import pytest

from repro.distributed import DistributedChannel, IbisDaemon
from repro.rpc import (
    PROTOCOL_VERSION,
    ProtocolError,
    RemoteError,
    SocketChannel,
    encode_frame_v2,
    pack_frame,
    recv_frame,
    send_frame,
    send_frame_v2,
    wait_all,
    worker_loop,
)
from repro.rpc import protocol as protocol_mod
from repro.rpc.channel import DirectChannel
from repro.rpc.protocol import MAGIC, MAGIC2, decode_payload, encode_payload

pytestmark = pytest.mark.network


class _FakeSocket:
    """In-memory socket with the v2 surface (recv_into, sendmsg)."""

    def __init__(self, data=b""):
        self._rx = io.BytesIO(data)
        self.sent = bytearray()
        self.sendmsg_calls = 0

    def sendall(self, data):
        self.sent.extend(data)

    def sendmsg(self, buffers):
        self.sendmsg_calls += 1
        n = 0
        for buf in buffers:
            self.sent.extend(buf)
            n += len(buf)
        return n

    def recv(self, n):
        return self._rx.read(n)

    def recv_into(self, view):
        data = self._rx.read(len(view))
        view[: len(data)] = data
        return len(data)


def v2_round_trip(message):
    sock = _FakeSocket()
    send_frame_v2(sock, message)
    return recv_frame(_FakeSocket(bytes(sock.sent)))


class _OrderedInterface:
    """Records call order; used by batching/ordering tests."""

    def __init__(self):
        self.log = []

    def note(self, token):
        self.log.append(token)
        return token

    def get_log(self):
        return list(self.log)

    def boom(self):
        raise ValueError("kapow")

    def echo_array(self, arr):
        return np.asarray(arr) * 2.0

    def stop(self):
        return 0


class TestFrameV2:
    def test_round_trip_zero_buffers(self):
        message = ("call", 1, "method", (1, "x"), {"k": [1.5, None]})
        assert v2_round_trip(message) == message

    def test_zero_buffer_frames_use_v1_framing(self):
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 1, "plain"))
        assert bytes(sock.sent[:4]) == MAGIC

    def test_buffered_frames_use_v2_framing(self):
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 1, np.arange(16.0)))
        assert bytes(sock.sent[:4]) == MAGIC2
        assert sock.sendmsg_calls == 1

    def test_round_trip_one_buffer(self):
        arr = np.arange(1000, dtype=np.float64)
        out = v2_round_trip(("result", 2, arr))
        assert out[:2] == ("result", 2)
        assert np.array_equal(out[2], arr)

    def test_round_trip_many_buffers(self):
        arrays = [
            np.arange(10, dtype=np.float64),
            np.arange(20, dtype=np.int64) * 3,
            np.ones((4, 5)),
            bytearray(b"raw-bytes-buffer"),
        ]
        out = v2_round_trip(("result", 3, arrays))
        for sent, got in zip(arrays, out[2], strict=True):
            if isinstance(sent, bytearray):
                assert got == sent
            else:
                assert np.array_equal(got, sent)

    def test_received_arrays_are_writable(self):
        arr = np.arange(100, dtype=np.float64)
        out = v2_round_trip(("result", 4, arr))
        out[2][0] = -1.0
        assert out[2][0] == -1.0

    def test_empty_array_buffer(self):
        out = v2_round_trip(("result", 5, np.empty(0)))
        assert out[2].size == 0

    def test_v1_frames_still_decode(self):
        message = ("result", 6, {"v1": True})
        sock = _FakeSocket(pack_frame(message))
        assert recv_frame(sock) == message

    def test_frame_parts_share_memory_with_source(self):
        """The send path must not copy the array payload."""
        arr = np.arange(1000, dtype=np.float64)
        parts = encode_frame_v2(("result", 7, arr))
        buffer_part = parts[-1]
        assert memoryview(buffer_part).obj is arr.data.obj or np.shares_memory(
            np.frombuffer(buffer_part, dtype=np.float64), arr
        )

    def test_payload_helpers_round_trip(self):
        obj = {"a": np.arange(8.0), "b": "text"}
        meta, buffers = encode_payload(obj)
        out = decode_payload(meta, buffers)
        assert out["b"] == "text"
        assert np.array_equal(out["a"], obj["a"])


class TestCompressedFrames:
    """AMSC framing: negotiated per-buffer compression (frame level)."""

    def _wire(self, compress_min=1024):
        return protocol_mod.WireState(
            version=2,
            codec=protocol_mod.CODECS_BY_NAME["zlib"],
            compress_min=compress_min,
        )

    def test_compressible_buffer_round_trips_smaller(self):
        wire = self._wire()
        arr = np.zeros(1 << 15, dtype=np.float64)
        sock = _FakeSocket()
        sent = send_frame_v2(sock, ("result", 1, arr), wire)
        assert bytes(sock.sent[:4]) == protocol_mod.MAGIC_COMPRESS
        assert sent < arr.nbytes // 4
        out = recv_frame(_FakeSocket(bytes(sock.sent)))
        assert out[:2] == ("result", 1)
        assert np.array_equal(out[2], arr)

    def test_incompressible_buffer_stored_raw_in_amsc(self):
        wire = self._wire()
        rnd = np.random.default_rng(3).random(1 << 14)
        compressible = np.zeros(1 << 14)
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 2, [rnd, compressible]), wire)
        out = recv_frame(_FakeSocket(bytes(sock.sent)))
        assert np.array_equal(out[2][0], rnd)
        assert np.array_equal(out[2][1], compressible)

    def test_nothing_compressible_falls_back_to_plain_v2(self):
        wire = self._wire()
        # random BYTES (unlike random floats, whose exponent bytes
        # repeat) gain nothing under any codec
        rnd = np.random.default_rng(4).integers(
            0, 256, 1 << 14, dtype=np.uint8
        )
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 3, rnd), wire)
        assert bytes(sock.sent[:4]) == MAGIC2

    def test_below_threshold_keeps_plain_v2_framing(self):
        wire = self._wire(compress_min=1 << 20)
        arr = np.zeros(1 << 14)
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 4, arr), wire)
        assert bytes(sock.sent[:4]) == MAGIC2

    def test_decompressed_arrays_are_writable(self):
        wire = self._wire()
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 5, np.zeros(1 << 15)), wire)
        out = recv_frame(_FakeSocket(bytes(sock.sent)))
        out[2][0] = 1.5
        assert out[2][0] == 1.5

    def test_unknown_codec_id_rejected(self):
        wire = self._wire()
        arr = np.zeros(1 << 15)
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 6, arr), wire)
        data = bytearray(sock.sent)
        # codec id sits right after the 8-byte header + 4-byte count
        data[12] = 200
        with pytest.raises(ProtocolError, match="unknown codec"):
            recv_frame(_FakeSocket(bytes(data)))

    def test_shm_frame_without_wire_rejected(self):
        data = protocol_mod.HEADER.pack(
            protocol_mod.MAGIC_SHM, protocol_mod.SHM_HEAD.size
        ) + protocol_mod.SHM_HEAD.pack(0, 0)
        with pytest.raises(ProtocolError, match="shm"):
            recv_frame(_FakeSocket(data))


class TestHelloCapabilities:
    """Mixed-capability hello at the worker_loop level: the ack dict
    mirrors exactly what the worker could honour."""

    def _hello(self, caps, **worker_kwargs):
        client, server = socket.socketpair()
        thread = threading.Thread(
            target=worker_loop, args=(_OrderedInterface(), server),
            kwargs=worker_kwargs, daemon=True,
        )
        thread.start()
        send_frame(
            client,
            ("hello", 0, PROTOCOL_VERSION, (), {"caps": caps}),
        )
        reply = recv_frame(client)
        client.close()
        return reply

    def test_codec_offer_is_acked(self):
        reply = self._hello({"compress": ["zlib"]})
        assert reply[0] == "result"
        assert reply[2]["caps"] == {"compress": "zlib"}

    def test_unsupported_codec_offer_is_dropped(self):
        reply = self._hello({"compress": ["middle-out"]})
        assert reply[2]["caps"] == {}

    def test_capability_disabled_worker_acks_bare_version(self):
        reply = self._hello(
            {"compress": ["zlib"]}, enable_capabilities=False,
        )
        assert reply[0] == "result"
        assert reply[2] == {"version": PROTOCOL_VERSION}

    def test_v1_worker_still_answers_caps_hello_with_error(self):
        reply = self._hello({"compress": ["zlib"]}, max_version=1)
        assert reply[0] == "error"

    def test_bad_segment_names_in_shm_offer_are_dropped(self):
        reply = self._hello(
            {"shm": {"c2w": "psm_gone_a", "w2c": "psm_gone_b"}}
        )
        assert reply[2]["caps"] == {}


class TestOversizeRejection:
    def test_encode_rejects_oversize_frame(self, monkeypatch):
        monkeypatch.setattr(protocol_mod, "MAX_FRAME", 1024)
        with pytest.raises(ProtocolError, match="too large"):
            encode_frame_v2(("result", 1, np.zeros(4096)))

    def test_pack_rejects_oversize_frame(self, monkeypatch):
        monkeypatch.setattr(protocol_mod, "MAX_FRAME", 1024)
        with pytest.raises(ProtocolError, match="too large"):
            pack_frame(("result", 1, b"y" * 4096))

    def test_recv_rejects_oversize_v1_declaration(self):
        data = protocol_mod.HEADER.pack(MAGIC, 2**31 + 5) + b"x"
        with pytest.raises(ProtocolError, match="too large"):
            recv_frame(_FakeSocket(data))

    def test_recv_rejects_oversize_v2_block(self):
        data = protocol_mod.HEADER.pack(MAGIC2, 2**31 + 5)
        with pytest.raises(ProtocolError, match="too large"):
            recv_frame(_FakeSocket(data))

    def test_recv_rejects_oversize_buffer_table(self, monkeypatch):
        arr = np.zeros(512)
        sock = _FakeSocket()
        send_frame_v2(sock, ("result", 1, arr))
        monkeypatch.setattr(protocol_mod, "MAX_FRAME", 1024)
        with pytest.raises(ProtocolError, match="too large"):
            recv_frame(_FakeSocket(bytes(sock.sent)))

    def test_recv_rejects_corrupt_buffer_count(self):
        # block declares more buffer-table entries than the block holds
        block = protocol_mod.BLOCK_COUNT.pack(1 << 20)
        data = protocol_mod.HEADER.pack(MAGIC2, len(block)) + block
        with pytest.raises(ProtocolError, match="buffer"):
            recv_frame(_FakeSocket(data))


class TestNegotiation:
    def test_v2_worker_acks_hello(self):
        client, server = socket.socketpair()
        thread = threading.Thread(
            target=worker_loop, args=(_OrderedInterface(), server),
            daemon=True,
        )
        thread.start()
        send_frame(client, ("hello", 0, PROTOCOL_VERSION, (), {}))
        reply = recv_frame(client)
        assert reply[0] == "result"
        assert reply[2]["version"] == PROTOCOL_VERSION
        client.close()

    def test_v1_worker_answers_hello_with_error(self):
        """A pre-v2 worker sees an unknown message kind — that error IS
        the downgrade signal."""
        client, server = socket.socketpair()
        thread = threading.Thread(
            target=worker_loop, args=(_OrderedInterface(), server),
            kwargs={"max_version": 1}, daemon=True,
        )
        thread.start()
        send_frame(client, ("hello", 0, PROTOCOL_VERSION, (), {}))
        reply = recv_frame(client)
        assert reply[0] == "error"
        client.close()

    def test_socket_channel_downgrades_to_v1_worker(self):
        with SocketChannel(
            _OrderedInterface, worker_max_version=1
        ) as ch:
            assert ch.wire_version == 1
            assert ch.call("note", "still-works") == "still-works"

    def test_socket_channel_negotiates_v2(self):
        with SocketChannel(_OrderedInterface) as ch:
            assert ch.wire_version == 2
            out = ch.call("echo_array", np.arange(64.0))
            assert np.array_equal(out, np.arange(64.0) * 2.0)

    def test_v1_capped_client_stays_on_v1(self):
        with SocketChannel(_OrderedInterface, max_version=1) as ch:
            assert ch.wire_version == 1
            assert ch.call("note", 1) == 1

    def test_distributed_channel_downgrades_to_v1_daemon(self):
        with IbisDaemon(max_version=1) as daemon:
            ch = DistributedChannel(_OrderedInterface, daemon=daemon)
            assert ch.wire_version == 1
            assert ch.call("note", "ok") == "ok"
            assert ch.echo(b"ping") == b"ping"
            ch.stop()

    def test_distributed_channel_negotiates_v2(self):
        with IbisDaemon() as daemon:
            ch = DistributedChannel(_OrderedInterface, daemon=daemon)
            assert ch.wire_version == 2
            arr = np.arange(4096.0)
            assert np.array_equal(ch.echo(arr), arr)
            ch.stop()


class TestBatching:
    def test_batch_over_loopback_preserves_order(self):
        """The pipelined-batch ordering contract, over a real socket."""
        with SocketChannel(_OrderedInterface) as ch:
            with ch.batch():
                requests = [
                    ch.async_call("note", i) for i in range(10)
                ]
            assert wait_all(requests) == list(range(10))
            assert ch.call("get_log") == list(range(10))

    def test_batch_is_one_frame(self):
        with SocketChannel(_OrderedInterface) as ch:
            ch.call("note", "warm")
            before = ch.bytes_sent
            frames_before = ch.bytes_sent
            with ch.batch():
                reqs = [ch.async_call("note", i) for i in range(5)]
            wait_all(reqs)
            # a single mcall frame: far smaller than 5 separate frames
            one_frame = ch.bytes_sent - before
            with ch.batch():
                reqs = [ch.async_call("note", 99)]
            wait_all(reqs)
            single = ch.bytes_sent - frames_before - one_frame
            assert one_frame < 5 * single

    def test_error_inside_batch_fails_only_that_request(self):
        with SocketChannel(_OrderedInterface) as ch:
            with ch.batch():
                ok1 = ch.async_call("note", "a")
                bad = ch.async_call("boom")
                ok2 = ch.async_call("note", "b")
            assert ok1.result() == "a"
            with pytest.raises(RemoteError, match="kapow"):
                bad.result()
            assert ok2.result() == "b"
            # later calls still executed, channel still healthy
            assert ch.call("get_log") == ["a", "b"]

    def test_sync_call_inside_batch_drains_queue_first(self):
        with SocketChannel(_OrderedInterface) as ch:
            with ch.batch():
                ch.async_call("note", "first")
                assert ch.call("note", "second") == "second"
            assert ch.call("get_log") == ["first", "second"]

    def test_batch_on_v1_connection_falls_back(self):
        with SocketChannel(
            _OrderedInterface, worker_max_version=1
        ) as ch:
            with ch.batch():
                reqs = [ch.async_call("note", i) for i in range(4)]
            assert wait_all(reqs) == [0, 1, 2, 3]
            assert ch.call("get_log") == [0, 1, 2, 3]

    def test_batch_on_direct_channel(self):
        ch = DirectChannel(_OrderedInterface)
        with ch.batch():
            reqs = [ch.async_call("note", i) for i in range(3)]
        assert wait_all(reqs) == [0, 1, 2]

    def test_batch_through_daemon(self):
        with IbisDaemon() as daemon:
            ch = DistributedChannel(_OrderedInterface, daemon=daemon)
            with ch.batch():
                reqs = [ch.async_call("note", i) for i in range(6)]
            assert wait_all(reqs) == list(range(6))
            assert ch.call("get_log") == list(range(6))
            ch.stop()

    def test_batch_through_v1_daemon(self):
        with IbisDaemon(max_version=1) as daemon:
            ch = DistributedChannel(_OrderedInterface, daemon=daemon)
            with ch.batch():
                reqs = [ch.async_call("note", i) for i in range(4)]
            assert wait_all(reqs) == [0, 1, 2, 3]
            ch.stop()

    def test_aborted_batch_fails_waiters(self):
        with SocketChannel(_OrderedInterface) as ch:
            with pytest.raises(RuntimeError, match="abort"):
                with ch.batch():
                    req = ch.async_call("note", 1)
                    raise RuntimeError("abort this batch")
            with pytest.raises(ProtocolError, match="batch aborted"):
                req.result(timeout=1)

    def test_result_inside_batch_block_flushes(self):
        """Waiting on a queued request from inside the block must send
        the frame instead of deadlocking on the unflushed queue."""
        with SocketChannel(_OrderedInterface) as ch:
            with ch.batch():
                req = ch.async_call("note", "early")
                assert req.result(timeout=5) == "early"
        ch2 = DirectChannel(_OrderedInterface)
        with ch2.batch():
            req = ch2.async_call("note", 1)
            assert req.result(timeout=5) == 1

    def test_call_rejected_while_reader_cleanup_runs(self):
        """The pending-table insert re-checks the stopped flag under
        the lock, so a racing call cannot strand itself after loss."""
        with SocketChannel(_OrderedInterface) as ch:
            ch._stopped = True  # as the reader's loss cleanup sets it
            with pytest.raises(ProtocolError, match="stopped"):
                ch._dispatch_call("note", ("x",), {})

    def test_aborted_nested_batch_spares_outer_requests(self):
        """An aborted inner batch fails only its own queued entries;
        the outer block's requests survive and commit normally."""
        with SocketChannel(_OrderedInterface) as ch:
            with ch.batch():
                outer = ch.async_call("note", "outer")
                try:
                    with ch.batch():
                        inner = ch.async_call("note", "inner")
                        raise ValueError("inner abort")
                except ValueError:
                    pass
                with pytest.raises(ProtocolError, match="batch aborted"):
                    inner.result(timeout=1)
            assert outer.result(timeout=5) == "outer"
            assert ch.call("get_log") == ["outer"]

    def test_nested_batches_flush_in_order(self):
        with SocketChannel(_OrderedInterface) as ch:
            with ch.batch():
                outer = ch.async_call("note", "outer-1")
                with ch.batch():
                    inner = ch.async_call("note", "inner")
                # the nested exit drained everything queued so far
                assert outer.result(timeout=5) == "outer-1"
                assert inner.result(timeout=5) == "inner"
            assert ch.call("get_log") == ["outer-1", "inner"]


class TestFailedConnection:
    def test_batch_flush_failure_fails_queued_requests(self):
        """Connection loss between queueing and batch exit must fail
        the queued requests, not strand their waiters."""
        with SocketChannel(_OrderedInterface) as ch:
            with pytest.raises(ProtocolError):
                with ch.batch():
                    req = ch.async_call("note", 1)
                    # as the reader's loss cleanup would set it
                    ch._stopped = True
            with pytest.raises(ProtocolError):
                req.result(timeout=1)
            ch._stopped = False  # let the context-manager stop cleanly

    def test_stop_after_connection_loss_releases_socket(self):
        """stop() must close the socket even when the reader's loss
        cleanup already marked the channel stopped (fd leak)."""
        with IbisDaemon() as daemon:
            ch = DistributedChannel(_OrderedInterface, daemon=daemon)
            ch._sock.shutdown(socket.SHUT_RDWR)
            ch._reader.join(timeout=5)
            assert ch._stopped
            ch.stop()
            assert ch._sock.fileno() == -1

    def test_failed_field_upload_raises(self):
        """A failed source-particle upload must surface, not let the
        field query run against stale particles."""
        from repro.codes.highlevel import Fi
        from repro.units import nbody_system
        from repro.units.core import Quantity
        import numpy as np

        code = Fi(channel_type="sockets")
        eps = Quantity(0.0, nbody_system.length)
        pts = Quantity(np.zeros((2, 3)), nbody_system.length)
        bad_sources = (np.ones(3), "not-an-array-triplet")
        with pytest.raises(RemoteError):
            code.get_gravity_at_point(eps, pts, sources=bad_sources)
        code.stop()

    def test_call_after_connection_loss_raises(self):
        """A call issued after the reader thread died must raise, not
        hang forever (regression: pre-v2 channels hung)."""
        with IbisDaemon() as daemon:
            ch = DistributedChannel(_OrderedInterface, daemon=daemon)
            ch._sock.shutdown(socket.SHUT_RDWR)
            ch._reader.join(timeout=5)
            assert not ch._reader.is_alive()
            with pytest.raises((ProtocolError, OSError)):
                ch.call("note", "x")

    def test_pending_requests_fail_on_connection_loss(self):
        with IbisDaemon() as daemon:
            ch = DistributedChannel(_OrderedInterface, daemon=daemon)
            # park a pending request that will never be answered
            from repro.rpc.channel import AsyncRequest

            stuck = AsyncRequest()
            with ch._pending_lock:
                ch._pending[999_999] = stuck
            ch._sock.shutdown(socket.SHUT_RDWR)
            ch._reader.join(timeout=5)
            with pytest.raises(ProtocolError, match="connection lost"):
                stuck.result(timeout=5)
