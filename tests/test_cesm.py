"""CESM-lite tests: components, coupled system, layouts."""

import numpy as np
import pytest

from repro.cesm import (
    Atmosphere,
    EarthSystemModel,
    Land,
    Layout,
    Ocean,
    ParallelDriver,
    SeaIce,
    data_twin,
    insolation,
    land_mask,
)
from repro.datamodel import LatLonGrid


class TestComponents:
    def test_insolation_profile(self):
        lats = np.array([-90.0, 0.0, 90.0])
        s = insolation(lats)
        assert s[1] > s[0]
        assert s[0] == pytest.approx(s[2])
        # global mean ~ S0/4
        grid_lat = np.linspace(-89, 89, 500)
        weights = np.cos(np.radians(grid_lat))
        mean = (insolation(grid_lat) * weights).sum() / weights.sum()
        assert mean == pytest.approx(1361.0 / 4.0, rel=0.02)

    def test_atmosphere_relaxes_toward_balance(self):
        atm = Atmosphere()
        for _ in range(400):
            atm.step(5.0)
        t_mean = atm.grid.area_mean("t_air")
        assert 260.0 < t_mean < 300.0

    def test_atmosphere_stable_long_step(self):
        atm = Atmosphere()
        atm.step(30.0)                 # way beyond explicit CFL
        assert np.isfinite(atm.grid.field_array("t_air")).all()

    def test_land_fast_relaxation(self):
        lnd = Land()
        lnd.import_field("sw_down", np.full(lnd.grid.shape, 300.0))
        lnd.import_field("t_air", np.full(lnd.grid.shape, 288.0))
        lnd.step(5.0)
        t = lnd.grid.field_array("t_land")
        assert np.isfinite(t).all()
        assert 250.0 < t.mean() < 320.0

    def test_snow_brightens_cold_land(self):
        lnd = Land()
        lnd.import_field("sw_down", np.zeros(lnd.grid.shape))
        lnd.import_field("t_air", np.full(lnd.grid.shape, 230.0))
        lnd.step(5.0)
        assert lnd.grid.field_array("land_albedo").max() >= 0.6

    def test_ocean_flux_response(self):
        ocn = Ocean()
        sst0 = ocn.grid.field_array("sst").copy()
        ocn.import_field(
            "net_surface_flux", np.full(ocn.grid.shape, 50.0)
        )
        ocn.step(5.0)
        assert ocn.grid.field_array("sst").mean() > sst0.mean()

    def test_sea_ice_grows_below_freezing(self):
        ice = SeaIce()
        ice.import_field("sst", np.full(ice.grid.shape, 265.0))
        for _ in range(20):
            ice.step(5.0)
        assert ice.grid.field_array("ice_fraction").min() > 0.5

    def test_sea_ice_melts_when_warm(self):
        ice = SeaIce()
        ice.grid.field_array("thickness")[...] = 1.0
        ice.import_field("sst", np.full(ice.grid.shape, 285.0))
        for _ in range(40):
            ice.step(5.0)
        assert ice.grid.field_array("ice_fraction").max() < 0.05

    def test_import_validation(self):
        atm = Atmosphere()
        with pytest.raises(KeyError):
            atm.import_field("sst", np.zeros(atm.grid.shape))

    def test_imports_are_snapshots(self):
        atm = Atmosphere()
        field = np.full(atm.grid.shape, 0.3)
        atm.import_field("albedo", field)
        field[...] = 0.9
        assert atm._imports["albedo"].max() == pytest.approx(0.3)


class TestDataModels:
    def test_data_twin_replays_exports(self):
        atm = Atmosphere()
        atm.step(5.0)
        datm = data_twin(atm)
        before = {
            k: v.copy() for k, v in datm.export_fields().items()
        }
        datm.step(5.0)
        datm.step(5.0)
        for name, values in datm.export_fields().items():
            assert np.array_equal(values, before[name])

    def test_data_twin_ignores_imports(self):
        datm = data_twin(Atmosphere())
        assert datm.import_field("albedo", None) is None

    def test_data_twin_name(self):
        assert data_twin(Ocean()).name == "docn"


@pytest.mark.slow
class TestCoupledSystem:
    def test_mask_fraction(self):
        grid = LatLonGrid(24, 48)
        mask = land_mask(grid, land_fraction=0.3)
        assert mask.mean() == pytest.approx(0.3, abs=0.05)
        assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_mask_deterministic(self):
        grid = LatLonGrid(24, 48)
        assert np.array_equal(land_mask(grid), land_mask(grid))

    def test_equilibrium_climate(self):
        esm = EarthSystemModel()
        out = esm.run(days=20 * 365, dt_days=5.0)
        assert 260.0 < out["global_mean_t_air_k"] < 295.0
        assert 270.0 < out["global_mean_sst_k"] < 300.0
        assert 0.0 <= out["ice_fraction"] < 0.5

    def test_ice_albedo_feedback(self):
        warm = EarthSystemModel()
        warm.run(days=10 * 365)
        cold = EarthSystemModel()
        cold.atm.solar_constant = 1250.0
        cold.run(days=10 * 365)
        assert cold.diagnostics()["global_mean_t_air_k"] < \
            warm.diagnostics()["global_mean_t_air_k"] - 5.0
        assert cold.diagnostics()["ice_fraction"] >= \
            warm.diagnostics()["ice_fraction"]

    def test_exchange_counter(self):
        esm = EarthSystemModel()
        esm.run(days=50, dt_days=5.0)
        assert esm.exchange_count == 10

    def test_all_fields_finite_after_century(self):
        esm = EarthSystemModel()
        esm.run(days=365 * 30, dt_days=10.0)
        for comp in esm.components.values():
            for name in comp.EXPORTS:
                assert np.isfinite(
                    comp.grid.field_array(name)
                ).all(), f"{comp.name}.{name} has non-finite values"


class TestLayouts:
    def test_partitioned_layout_shape(self):
        layout = Layout.partitioned()
        assert layout.n_ranks == 4
        assert layout.components_of(0) == ["atm"]

    def test_shared_layout_shape(self):
        layout = Layout.shared(2)
        assert layout.n_ranks == 2
        assert len(layout.components_of(0)) == 4

    @pytest.mark.parametrize(
        "layout_factory",
        [Layout.partitioned, lambda: Layout.shared(4),
         lambda: Layout.shared(1)],
    )
    def test_results_independent_of_layout(self, layout_factory):
        serial = EarthSystemModel()
        serial.run(days=50, dt_days=5.0)
        parallel = EarthSystemModel()
        ParallelDriver(parallel, layout_factory()).run(
            days=50, dt_days=5.0
        )
        assert parallel.diagnostics()["global_mean_t_air_k"] == \
            pytest.approx(
                serial.diagnostics()["global_mean_t_air_k"],
                abs=1e-12,
            )

    def test_mixed_layout(self):
        layout = Layout(
            {"atm": (0, 1), "ocn": (2,), "lnd": (3,), "ice": (3,)}
        )
        esm = EarthSystemModel()
        ParallelDriver(esm, layout).run(days=20, dt_days=5.0)
        assert esm.time_days == 20.0
