"""King-model initial condition tests."""

import numpy as np
import pytest

from repro.ic import new_king_model, new_plummer_model
from repro.units import nbody_system, units


class TestKingModel:
    def test_standard_units(self):
        p = new_king_model(300, w0=6.0, rng=0)
        assert p.total_mass().number == pytest.approx(1.0)
        assert p.kinetic_energy().number == pytest.approx(
            0.25, rel=1e-8
        )
        assert p.potential_energy(
            G=nbody_system.G).number == pytest.approx(-0.5, rel=1e-8)

    def test_determinism(self):
        a = new_king_model(100, rng=3)
        b = new_king_model(100, rng=3)
        assert np.array_equal(a.position.number, b.position.number)

    def test_w0_validation(self):
        with pytest.raises(ValueError):
            new_king_model(10, w0=20.0)

    @pytest.mark.slow
    def test_tidally_truncated(self):
        """Unlike the Plummer sphere, a King model has a finite edge:
        no stars far outside the tidal radius."""
        king = new_king_model(2000, w0=3.0, rng=1)
        plummer = new_plummer_model(2000, rng=1)
        r_king = np.linalg.norm(king.position.number, axis=1)
        r_plummer = np.linalg.norm(plummer.position.number, axis=1)
        # the Plummer tail extends far beyond the King edge
        assert r_plummer.max() > 2.0 * r_king.max()

    @pytest.mark.slow
    def test_concentration_grows_with_w0(self):
        loose = new_king_model(2000, w0=3.0, rng=2)
        tight = new_king_model(2000, w0=9.0, rng=2)
        c_loose = _concentration(loose)
        c_tight = _concentration(tight)
        assert c_tight > c_loose

    def test_si_conversion(self):
        conv = nbody_system.nbody_to_si(
            5e4 | units.MSun, 3.0 | units.parsec
        )
        p = new_king_model(200, convert_nbody=conv, rng=4)
        assert p.total_mass().value_in(units.MSun) == pytest.approx(
            5e4
        )

    def test_usable_by_gravity_code(self):
        from repro.codes.phigrape import PhiGRAPEInterface

        p = new_king_model(64, rng=5)
        grav = PhiGRAPEInterface(eta=0.05)
        pos, vel = p.position.number, p.velocity.number
        grav.new_particle(
            p.mass.number, pos[:, 0], pos[:, 1], pos[:, 2],
            vel[:, 0], vel[:, 1], vel[:, 2],
        )
        grav.ensure_state("RUN")
        e0 = grav.get_total_energy()
        grav.evolve_model(0.1)
        assert abs(
            (grav.get_total_energy() - e0) / e0
        ) < 1e-6


def _concentration(particles):
    """r90/r10 ratio — smaller means more concentrated profile; use
    the inverse so bigger = more concentrated."""
    r = np.sort(np.linalg.norm(particles.position.number, axis=1))
    r10 = r[int(0.1 * len(r))]
    r90 = r[int(0.9 * len(r))]
    return 1.0 / (r10 / r90)
