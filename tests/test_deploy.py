"""IbisDeploy tests: descriptions, deployment, monitoring."""

import pytest

from repro.ibis.deploy import (
    ApplicationDescription,
    ClusterDescription,
    Deploy,
    GridDescription,
    parse_grid_description,
)
from repro.ibis.gat import JobState
from repro.jungle import make_lab_jungle, make_sc11_jungle

GRID_FILE = """
[defaults]
user = niels
middleware = ssh

[VU]
nodes = 8
cores = 8
frontend = fs0.das4.vu.nl

[LGM]
middleware = ssh
nodes = 1
gpu = Tesla C2050

[TUD]
middleware = sge
nodes = 2
"""


class TestDescriptions:
    def test_parse_grid_file(self):
        grid = parse_grid_description(GRID_FILE)
        assert grid.names() == ["LGM", "TUD", "VU"]
        assert grid["VU"].nodes == 8
        assert grid["VU"].frontend == "fs0.das4.vu.nl"
        assert grid["VU"].user == "niels"
        assert grid["LGM"].gpu == "Tesla C2050"
        assert grid["TUD"].middleware == "sge"

    def test_defaults_apply(self):
        grid = parse_grid_description(GRID_FILE)
        assert grid["VU"].middleware == "ssh"

    def test_grid_container(self):
        grid = GridDescription()
        grid.add(ClusterDescription("X", nodes=4))
        assert len(grid) == 1
        assert [c.name for c in grid] == ["X"]

    def test_application_defaults(self):
        app = ApplicationDescription("amuse")
        # AMUSE is preinstalled on resources (paper Sec. 5); only a
        # small config file is staged
        assert app.amuse_preinstalled
        assert sum(app.files.values()) < 1_000_000


class TestDeployment:
    def test_full_deploy_on_lab_jungle(self):
        jungle = make_lab_jungle()
        deploy = Deploy(jungle, jungle.host("desktop"))
        app = ApplicationDescription("amuse")
        deploy.submit(app, jungle.sites["LGM (LU)"], "gravity",
                      needs_gpu=True)
        deploy.submit(app, jungle.sites["DAS-4 (UvA)"], "hydro",
                      node_count=8)
        assert deploy.wait_until_deployed()
        states = {j["state"] for j in deploy.job_table()}
        assert states == {JobState.RUNNING}

    def test_hub_started_per_resource(self):
        jungle = make_lab_jungle()
        deploy = Deploy(jungle, jungle.host("desktop"))
        app = ApplicationDescription("amuse")
        deploy.submit(app, jungle.sites["LGM (LU)"], "gravity",
                      needs_gpu=True)
        hubs = set(deploy.factory.overlay.hubs)
        assert "desktop" in hubs                 # root hub
        assert "LGM (LU)-frontend" in hubs       # per-resource hub

    def test_client_ibis_joins_pool(self):
        jungle = make_lab_jungle()
        deploy = Deploy(jungle, jungle.host("desktop"))
        deploy.initialize()
        assert deploy.registry.size() == 1

    def test_default_worker_joins_pool(self):
        jungle = make_lab_jungle()
        deploy = Deploy(jungle, jungle.host("desktop"))
        app = ApplicationDescription("amuse")
        job = deploy.submit(
            app, jungle.sites["LGM (LU)"], "gravity", needs_gpu=True
        )
        deploy.wait_until_deployed()
        assert job.ibis is not None
        assert deploy.registry.size() == 2      # client + worker

    def test_cancel_all(self):
        jungle = make_lab_jungle()
        deploy = Deploy(jungle, jungle.host("desktop"))
        app = ApplicationDescription("amuse")
        deploy.submit(app, jungle.sites["DAS-4 (TUD)"], "coupling",
                      node_count=2, needs_gpu=True)
        deploy.wait_until_deployed()
        deploy.cancel_all()
        jungle.env.run(until=jungle.env.now + 10)
        assert deploy.job_table()[0]["state"] == JobState.STOPPED


class TestMonitor:
    @pytest.fixture(scope="class")
    def snapshot(self):
        jungle = make_sc11_jungle()
        deploy = Deploy(jungle, jungle.host("laptop"))
        app = ApplicationDescription("amuse")
        deploy.submit(app, jungle.sites["LGM (LU)"], "gravity",
                      needs_gpu=True)
        deploy.submit(app, jungle.sites["DAS-4 (VU)"], "hydro",
                      node_count=8)
        deploy.wait_until_deployed()
        return deploy.monitor.snapshot()

    def test_resource_map_lists_all_sites(self, snapshot):
        sites = {r["site"] for r in snapshot["resources"]}
        assert "Seattle (SC11)" in sites
        assert "LGM (LU)" in sites

    def test_job_table_contents(self, snapshot):
        roles = {j["role"] for j in snapshot["jobs"]}
        assert roles == {"gravity", "hydro"}

    def test_overlay_has_one_way_laptop_links(self, snapshot):
        kinds = {
            kind for a, b, kind in snapshot["overlay"]
            if "laptop" in (a, b)
        }
        assert kinds == {"one-way"}

    def test_file_staging_visible_in_traffic(self, snapshot):
        # deployment staged config files; ipl/mpi still empty
        assert snapshot["traffic_ipl"] == {}

    def test_renderable(self, snapshot):
        from repro.viz import render_snapshot
        text = render_snapshot(snapshot)
        assert "RESOURCES" in text and "JOBS" in text
        assert "OVERLAY" in text
