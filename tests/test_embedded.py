"""Embedded-cluster simulation driver tests."""

import numpy as np
import pytest

from repro.coupling import EmbeddedClusterSimulation
from repro.units import units


@pytest.fixture(scope="module")
def sim():
    simulation = EmbeddedClusterSimulation(
        n_stars=16, n_gas=96, rng=11, mass_min=5.0, mass_max=25.0,
        bridge_timestep_myr=0.1, se_interval=2, star_mass_fraction=0.3,
    )
    yield simulation
    simulation.stop()


class TestSetup:
    def test_four_models_wired(self, sim):
        roles = sim.codes_by_role()
        assert sorted(roles) == ["coupling", "gravity", "hydro", "se"]

    def test_initial_diagnostics(self, sim):
        d = sim.diagnostics()
        assert d["stage"] == "embedded"
        assert d["bound_gas_fraction"] > 0.9
        assert d["n_supernovae"] == 0

    def test_mass_budget(self, sim):
        d = sim.diagnostics()
        total = d["total_star_mass_msun"] + d["gas_mass_msun"]
        star_frac = d["total_star_mass_msun"] / total
        assert star_frac == pytest.approx(0.3, rel=1e-6)

    def test_coupling_choice(self):
        s = EmbeddedClusterSimulation(
            n_stars=8, n_gas=32, rng=1, coupling_code="octgrav"
        )
        assert s.coupling_name == "octgrav"
        assert type(s.coupling).__name__ == "Octgrav"
        s.stop()

    def test_unknown_coupling_raises(self):
        with pytest.raises(KeyError):
            EmbeddedClusterSimulation(
                n_stars=8, n_gas=32, coupling_code="magic"
            )


class TestEvolution:
    def test_iteration_advances_time(self, sim):
        t0 = sim.model_time.value_in(units.Myr)
        sim.evolve_one_iteration()
        t1 = sim.model_time.value_in(units.Myr)
        assert t1 == pytest.approx(t0 + 0.1, rel=1e-6)

    def test_se_exchange_on_interval(self, sim):
        before = sim.se.model_time.value_in(units.Myr)
        # next iteration hits the se_interval=2 boundary
        while sim.iteration % 2 != 1:
            sim.evolve_one_iteration()
        sim.evolve_one_iteration()
        after = sim.se.model_time.value_in(units.Myr)
        assert after > before

    @pytest.mark.slow
    def test_mass_loss_propagates_to_gravity(self):
        s = EmbeddedClusterSimulation(
            n_stars=8, n_gas=48, rng=3, mass_min=15.0, mass_max=25.0,
            bridge_timestep_myr=1.0, se_interval=1,
        )
        m0 = s.gravity.channel.call("get_mass").sum()
        for _ in range(8):
            s.evolve_one_iteration()
        m1 = s.gravity.channel.call("get_mass").sum()
        assert m1 < m0     # winds + supernovae removed stellar mass
        s.stop()

    def test_feedback_heats_gas(self):
        """The SE exchange itself must deposit energy into the gas
        (measured immediately, before adiabatic expansion cools it)."""
        s = EmbeddedClusterSimulation(
            n_stars=8, n_gas=48, rng=3, mass_min=15.0, mass_max=25.0,
            bridge_timestep_myr=1.0, se_interval=1,
        )
        # move the bridge clock forward without evolving the gas, then
        # trigger the SE exchange: winds must heat nearby particles
        # (14 Myr: the 15-25 MSun stars are on the giant branch)
        s.bridge.time = 14.0 | units.Myr
        u0 = s.hydro.channel.call("get_internal_energy").copy()
        s.exchange_stellar_evolution()
        u1 = s.hydro.channel.call("get_internal_energy")
        assert u1.sum() > u0.sum()
        assert np.all(u1 >= u0 - 1e-12)
        s.stop()

    @pytest.mark.slow
    def test_supernova_counted(self):
        s = EmbeddedClusterSimulation(
            n_stars=6, n_gas=32, rng=5, mass_min=20.0, mass_max=30.0,
            bridge_timestep_myr=2.0, se_interval=1,
        )
        for _ in range(5):   # 10 Myr > t_SN(20..30 MSun)
            s.evolve_one_iteration()
        assert s.n_supernovae > 0
        s.stop()

    def test_run_with_callback(self):
        s = EmbeddedClusterSimulation(
            n_stars=8, n_gas=32, rng=6, bridge_timestep_myr=0.05
        )
        times = []
        s.run(3, callback=lambda sim: times.append(
            sim.model_time.value_in(units.Myr))
        )
        assert len(times) == 3
        assert times == sorted(times)
        s.stop()


class TestDiagnostics:
    def test_gas_specific_energy_shape(self, sim):
        espec = sim.gas_specific_energy()
        assert espec.shape == (96,)

    def test_bound_fraction_in_unit_interval(self, sim):
        d = sim.diagnostics()
        assert 0.0 <= d["bound_gas_fraction"] <= 1.0

    def test_stage_classification_boundaries(self):
        from repro.coupling.embedded import _classify_stage
        assert _classify_stage(0.95) == "embedded"
        assert _classify_stage(0.6) == "expanding"
        assert _classify_stage(0.2) == "shell"
        assert _classify_stage(0.01) == "expelled"
