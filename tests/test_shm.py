"""Tests for the shm channel, its arena allocator, and the negotiated
per-buffer compression.

Covers the :class:`~repro.rpc.shm.ShmArena` free-list allocator, the
shm channel in both worker modes (thread and subprocess), graceful
degradation when the arena is exhausted, the hello capability
negotiation matrix (v2+caps vs plain-v2 vs v1 peers, unattachable
segments), segment lifecycle (no leaked ``/dev/shm`` entries after
stop, peer death, or terminate/kill escalation), compression
negotiation and thresholds, the daemon's shm pilot mode and the
``new_channel`` kwarg validation over the new options.
"""

import functools
import os
import signal
import time
import warnings as warnings_mod

import numpy as np
import pytest

from repro.codes.testing import (
    ArrayEchoInterface,
    SleepInterface,
    WedgedStopInterface,
)
from repro.distributed import DistributedChannel, IbisDaemon
from repro.rpc import ConnectionLostError, ProtocolError, new_channel
from repro.rpc import protocol as protocol_mod
from repro.rpc.protocol import WireState, accept_capabilities
from repro.rpc.shm import ShmArena, ShmChannel
from repro.rpc.subproc import SubprocessChannel

pytestmark = pytest.mark.network

FAST = {"stop_timeout": 5.0, "kill_timeout": 5.0}


def segment_paths(channel):
    """The /dev/shm paths behind a channel's offered segment pair."""
    arenas = channel._shm_arenas or ()
    return [f"/dev/shm/{arena.name.lstrip('/')}" for arena in arenas]


class TestShmArena:
    def test_alloc_write_read_roundtrip(self):
        arena = ShmArena(1 << 20)
        try:
            offset = arena.alloc(1000)
            payload = bytes(range(256)) * 4
            arena.write(offset, payload[:1000])
            assert bytes(arena.read(offset, 1000)) == payload[:1000]
        finally:
            arena.unlink()
            arena.close()

    def test_first_fit_and_exhaustion(self):
        arena = ShmArena(1 << 12)      # 4 KiB
        try:
            a = arena.alloc(1 << 11)   # 2 KiB
            b = arena.alloc(1 << 11)   # fills the segment
            assert a is not None and b is not None
            assert arena.alloc(64) is None
        finally:
            arena.unlink()
            arena.close()

    def test_free_coalesces_adjacent_blocks(self):
        arena = ShmArena(1 << 12)
        try:
            blocks = [arena.alloc(1 << 10) for _ in range(4)]
            assert None not in blocks
            assert arena.alloc(64) is None
            # free out of order; coalescing must rebuild one big hole
            for offset in (blocks[1], blocks[3], blocks[0], blocks[2]):
                arena.free(offset)
            assert arena.allocated_bytes == 0
            assert arena.alloc(1 << 12) == 0
        finally:
            arena.unlink()
            arena.close()

    def test_blocks_are_cacheline_aligned(self):
        arena = ShmArena(1 << 12)
        try:
            a = arena.alloc(1)
            b = arena.alloc(1)
            assert a % 64 == 0 and b % 64 == 0 and b - a == 64
        finally:
            arena.unlink()
            arena.close()

    def test_double_free_is_ignored(self):
        arena = ShmArena(1 << 12)
        try:
            offset = arena.alloc(128)
            arena.free(offset)
            arena.free(offset)     # second free: no corruption
            assert arena.allocated_bytes == 0
        finally:
            arena.unlink()
            arena.close()

    def test_out_of_bounds_read_rejected(self):
        arena = ShmArena(1 << 12)
        try:
            with pytest.raises(ProtocolError, match="out of bounds"):
                arena.read((1 << 12) - 8, 64)
        finally:
            arena.unlink()
            arena.close()

    def test_unlink_and_close_are_idempotent(self):
        arena = ShmArena(1 << 12)
        path = f"/dev/shm/{arena.name.lstrip('/')}"
        assert os.path.exists(path)
        arena.unlink()
        arena.unlink()
        assert not os.path.exists(path)
        arena.close()
        arena.close()
        assert arena.alloc(64) is None   # closed arena allocates nothing

    def test_attach_reads_creator_writes(self):
        creator = ShmArena(1 << 16)
        try:
            offset = creator.alloc(256)
            creator.write(offset, b"x" * 256)
            attached = ShmArena(name=creator.name, create=False)
            try:
                assert bytes(attached.read(offset, 256)) == b"x" * 256
                attached.unlink()      # attached side never owns it
                assert os.path.exists(
                    f"/dev/shm/{creator.name.lstrip('/')}"
                )
            finally:
                attached.close()
        finally:
            creator.unlink()
            creator.close()


@pytest.fixture(params=["thread", "subprocess"])
def shm_channel(request):
    ch = new_channel(
        "shm", ArrayEchoInterface, worker_mode=request.param,
    )
    yield ch
    try:
        ch.stop()
    except ProtocolError:
        pass


class TestShmChannel:
    def test_negotiates_shm(self, shm_channel):
        assert shm_channel.wire_version == 2
        assert shm_channel.wire_caps.get("shm") is True
        assert shm_channel.transport_stats["shm"]

    def test_large_arrays_bypass_the_socket(self, shm_channel):
        array = np.arange(1 << 17, dtype=np.float64)   # 1 MiB
        out = shm_channel.call("scale", array, 2.0)
        assert np.array_equal(out, array * 2.0)
        stats = shm_channel.transport_stats
        assert stats["shm_buffer_bytes"] >= array.nbytes
        assert stats["wire_buffer_bytes"] == 0

    def test_received_arrays_are_writable(self, shm_channel):
        out = shm_channel.call(
            "echo", np.arange(1 << 17, dtype=np.float64)
        )
        out[0] = -1.0
        assert out[0] == -1.0

    def test_small_payloads_stay_inline(self, shm_channel):
        assert shm_channel.call("echo", b"tiny") == b"tiny"
        assert shm_channel.transport_stats["shm_buffer_bytes"] == 0

    def test_piggybacked_frees_recycle_the_arena(self, shm_channel):
        array = np.zeros(1 << 17, dtype=np.float64)
        for _ in range(32):
            shm_channel.call("echo", array)
        # one extra round trip flushes the last piggybacked free list
        shm_channel.call("echo", b"flush")
        tx, rx = shm_channel._shm_arenas
        assert tx.allocated_bytes == 0

    def test_batch_and_async_over_shm(self, shm_channel):
        arrays = [
            np.full(1 << 15, float(i), dtype=np.float64)
            for i in range(4)
        ]
        with shm_channel.batch():
            requests = [
                shm_channel.async_call("checksum", a) for a in arrays
            ]
        for i, req in enumerate(requests):
            assert req.result(timeout=10) == float(i) * (1 << 15)

    def test_stop_unlinks_segments(self):
        ch = new_channel("shm", ArrayEchoInterface)
        paths = segment_paths(ch)
        assert len(paths) == 2 and all(os.path.exists(p) for p in paths)
        ch.call("echo", np.zeros(1 << 17))
        ch.stop()
        assert not any(os.path.exists(p) for p in paths)

    def test_arena_exhaustion_falls_back_to_inline(self):
        # 1 MiB segment, 4 MiB payload: cannot fit, must go inline
        ch = ShmChannel(
            ArrayEchoInterface, segment_size=1 << 20, shm_min=1 << 12,
        )
        try:
            big = np.arange(1 << 19, dtype=np.float64)
            out = ch.call("echo", big)
            assert np.array_equal(out, big)
            assert ch.transport_stats["wire_buffer_bytes"] >= big.nbytes
        finally:
            ch.stop()

    def test_overcommitted_async_burst_stays_correct(self):
        # eight in-flight 256 KiB payloads against a 512 KiB arena:
        # some travel via shm, the overflow inline, results identical
        ch = ShmChannel(
            ArrayEchoInterface, segment_size=1 << 19, shm_min=1 << 12,
        )
        try:
            arrays = [
                np.full(1 << 15, float(i)) for i in range(8)
            ]
            requests = [ch.async_call("echo", a) for a in arrays]
            for sent, req in zip(arrays, requests, strict=True):
                assert np.array_equal(req.result(timeout=10), sent)
        finally:
            ch.stop()

    @pytest.mark.parametrize("worker_mode", ["thread", "subprocess"])
    def test_custom_shm_min_honoured_on_both_sides(self, worker_mode):
        # regression: the SENDING side must apply the configured
        # threshold too (the subprocess channel once only shipped it
        # to the worker via caps, leaving its own side at the default)
        ch = ShmChannel(
            ArrayEchoInterface, worker_mode=worker_mode, shm_min=256,
        )
        try:
            small = np.arange(512, dtype=np.float64)   # 4 KiB
            out = ch.call("echo", small)
            assert np.array_equal(out, small)
            assert ch.transport_stats["shm_buffer_bytes"] >= \
                small.nbytes
        finally:
            ch.stop()

    def test_unknown_worker_mode_rejected(self):
        with pytest.raises(ValueError, match="worker mode"):
            ShmChannel(ArrayEchoInterface, worker_mode="carrier-pigeon")


class TestCapabilityNegotiation:
    """The mixed-version / mixed-capability hello matrix."""

    def test_plain_v2_thread_peer_downgrades_cleanly(self):
        ch = new_channel(
            "shm", ArrayEchoInterface, worker_capabilities=False,
        )
        try:
            assert ch.wire_version == 2
            assert ch.wire_caps == {}
            assert ch._shm_arenas is None     # segments released
            array = np.arange(1 << 17, dtype=np.float64)
            assert np.array_equal(ch.call("echo", array), array)
            assert ch.transport_stats["shm_buffer_bytes"] == 0
        finally:
            ch.stop()

    def test_plain_v2_subprocess_peer_downgrades_cleanly(self):
        ch = new_channel(
            "shm", ArrayEchoInterface, worker_mode="subprocess",
            worker_capabilities=False,
        )
        try:
            assert ch.wire_version == 2
            assert ch.wire_caps == {}
            array = np.arange(1 << 17, dtype=np.float64)
            assert np.array_equal(ch.call("echo", array), array)
        finally:
            ch.stop()

    def test_v1_peer_downgrades_everything(self):
        ch = new_channel(
            "shm", ArrayEchoInterface, worker_max_version=1,
        )
        try:
            assert ch.wire_version == 1
            assert ch.wire_caps == {}
            assert ch._shm_arenas is None
            array = np.arange(1 << 14, dtype=np.float64)
            assert np.array_equal(ch.call("echo", array), array)
        finally:
            ch.stop()

    def test_compression_offer_against_plain_v2_peer(self):
        ch = new_channel(
            "sockets", ArrayEchoInterface, compress=True,
            worker_capabilities=False,
        )
        try:
            assert ch.wire_version == 2
            assert ch.transport_stats["codec"] is None
            comp = np.zeros(1 << 16)
            assert np.array_equal(ch.call("echo", comp), comp)
        finally:
            ch.stop()

    def test_compression_offer_against_v1_peer(self):
        ch = new_channel(
            "sockets", ArrayEchoInterface, compress=True,
            worker_max_version=1,
        )
        try:
            assert ch.wire_version == 1
            assert ch.transport_stats["codec"] is None
            comp = np.zeros(1 << 16)
            assert np.array_equal(ch.call("echo", comp), comp)
        finally:
            ch.stop()

    def test_downgraded_offer_leaves_no_segments(self):
        before_names = set(os.listdir("/dev/shm"))
        ch = new_channel(
            "shm", ArrayEchoInterface, worker_capabilities=False,
        )
        ch.stop()
        assert set(os.listdir("/dev/shm")) <= before_names

    def test_unattachable_segments_are_not_acked(self):
        wire = WireState()
        accepted = accept_capabilities(
            {"shm": {"c2w": "psm_no_such_segment",
                     "w2c": "psm_no_such_either"}},
            wire,
        )
        assert "shm" not in accepted
        assert wire.tx_arena is None

    def test_unknown_capabilities_are_ignored(self):
        wire = WireState()
        accepted = accept_capabilities(
            {"quantum-entanglement": True}, wire
        )
        assert accepted == {}

    def test_codec_preference_honours_the_offer_order(self):
        assert protocol_mod.negotiate_codec(["zlib"]) == "zlib"
        assert protocol_mod.negotiate_codec(
            ["made-up-codec", "zlib"]
        ) == "zlib"
        assert protocol_mod.negotiate_codec(["made-up-codec"]) is None


class TestCompression:
    def test_negotiated_and_shrinks_compressible_payloads(self):
        ch = new_channel(
            "sockets", ArrayEchoInterface, compress=True,
            compress_min=1024,
        )
        try:
            assert ch.wire_caps.get("compress") in ("zstd", "lz4",
                                                    "zlib")
            comp = np.zeros(1 << 16, dtype=np.float64)   # 512 KiB
            before = ch.bytes_sent
            out = ch.call("echo", comp)
            assert np.array_equal(out, comp)
            assert ch.bytes_sent - before < comp.nbytes // 4
            stats = ch.transport_stats
            assert stats["wire_buffer_bytes"] < \
                stats["raw_buffer_bytes"]
        finally:
            ch.stop()

    def test_incompressible_payloads_ride_raw(self):
        ch = new_channel(
            "sockets", ArrayEchoInterface, compress=True,
            compress_min=1024,
        )
        try:
            rnd = np.random.default_rng(7).random(1 << 15)
            before = ch.bytes_sent
            out = ch.call("echo", rnd)
            assert np.array_equal(out, rnd)
            # stored raw: wire cost is payload + small framing
            assert ch.bytes_sent - before < rnd.nbytes + 4096
        finally:
            ch.stop()

    def test_below_threshold_payloads_are_not_compressed(self):
        ch = new_channel(
            "sockets", ArrayEchoInterface, compress=True,
            compress_min=1 << 20,
        )
        try:
            comp = np.zeros(1 << 14, dtype=np.float64)  # far below min
            before = ch.bytes_sent
            assert np.array_equal(ch.call("echo", comp), comp)
            assert ch.bytes_sent - before >= comp.nbytes
        finally:
            ch.stop()

    def test_decompressed_arrays_are_writable(self):
        ch = new_channel(
            "sockets", ArrayEchoInterface, compress=True,
            compress_min=1024,
        )
        try:
            out = ch.call("echo", np.zeros(1 << 16))
            out[0] = 42.0
            assert out[0] == 42.0
        finally:
            ch.stop()

    def test_same_host_channels_do_not_offer_compression(self):
        for kind in ("sockets", "subprocess"):
            ch = new_channel(kind, ArrayEchoInterface, **(
                FAST if kind == "subprocess" else {}
            ))
            try:
                assert "compress" not in ch.wire_caps
                assert ch.transport_stats["codec"] is None
            finally:
                ch.stop()

    def test_wan_profile_distributed_channel_negotiates_on(self):
        with IbisDaemon() as daemon:
            wan = DistributedChannel(
                ArrayEchoInterface, daemon=daemon,
                resource="DAS-4 (VU)",
            )
            local = DistributedChannel(
                ArrayEchoInterface, daemon=daemon, resource="local",
            )
            try:
                assert wan.transport_stats["codec"] is not None
                assert local.transport_stats["codec"] is None
                comp = np.zeros(1 << 16, dtype=np.float64)
                before = wan.bytes_sent
                assert np.array_equal(wan.echo(comp), comp)
                assert wan.bytes_sent - before < comp.nbytes // 4
            finally:
                wan.stop()
                local.stop()

    def test_compression_offer_against_v1_daemon(self):
        with IbisDaemon(max_version=1) as daemon:
            ch = DistributedChannel(
                ArrayEchoInterface, daemon=daemon,
                resource="DAS-4 (VU)",
            )
            try:
                assert ch.wire_version == 1
                assert ch.transport_stats["codec"] is None
                array = np.arange(1 << 14, dtype=np.float64)
                assert np.array_equal(ch.echo(array), array)
            finally:
                ch.stop()

    def test_unknown_codec_name_rejected_eagerly(self):
        with pytest.raises(ValueError, match="not available"):
            new_channel(
                "sockets", ArrayEchoInterface,
                compress="middle-out",
            )


class TestPeerDeath:
    def test_killed_shm_peer_raises_and_unlinks(self):
        ch = ShmChannel(
            functools.partial(SleepInterface, cost_s=30.0),
            worker_mode="subprocess", **FAST,
        )
        paths = segment_paths(ch)
        assert all(os.path.exists(p) for p in paths)
        request = ch.async_call("evolve_model", 1.0)
        time.sleep(0.2)
        os.kill(ch.pid, signal.SIGKILL)
        with pytest.raises(ConnectionLostError) as excinfo:
            request.result(timeout=15)
        assert excinfo.value.returncode == -signal.SIGKILL
        # the loss path already removed the names — no /dev/shm leak
        # even before stop() runs
        assert not any(os.path.exists(p) for p in paths)
        with pytest.raises(ConnectionLostError):
            ch.stop()
        ch.stop()      # idempotent afterwards
        assert not any(os.path.exists(p) for p in paths)

    def test_escalated_stop_unlinks_segments(self):
        ch = ShmChannel(
            functools.partial(WedgedStopInterface, wedge_s=30.0),
            worker_mode="subprocess", stop_timeout=0.5,
            kill_timeout=5.0,
        )
        paths = segment_paths(ch)
        assert all(os.path.exists(p) for p in paths)
        with pytest.warns(RuntimeWarning, match="escalated"):
            ch.stop()
        assert not any(os.path.exists(p) for p in paths)

    def test_thread_mode_stop_unlinks_segments(self):
        ch = ShmChannel(ArrayEchoInterface)
        paths = segment_paths(ch)
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            ch.stop()
        assert not any(os.path.exists(p) for p in paths)


class TestDaemonShmPilots:
    def test_shm_pilot_mode(self):
        with IbisDaemon() as daemon:
            ch = DistributedChannel(
                ArrayEchoInterface, daemon=daemon, worker_mode="shm",
            )
            try:
                meta = ch._request(("list_workers",)).result()
                entry = meta[ch.worker_id]
                assert entry["mode"] == "shm"
                assert entry["pid"] not in (None, os.getpid())
                array = np.arange(1 << 15, dtype=np.float64)
                out = ch.call("scale", array, 2.0)
                assert np.array_equal(out, array * 2.0)
            finally:
                ch.stop()

    def test_daemon_default_shm_mode(self):
        with IbisDaemon(worker_mode="shm") as daemon:
            ch = DistributedChannel(ArrayEchoInterface, daemon=daemon)
            try:
                meta = ch._request(("list_workers",)).result()
                assert meta[ch.worker_id]["mode"] == "shm"
            finally:
                ch.stop()

    def test_unknown_mode_error_names_shm(self):
        with pytest.raises(ValueError, match="shm"):
            IbisDaemon(worker_mode="carrier-pigeon")


class TestKwargValidation:
    """new_channel must vet the new shm/compression kwargs too."""

    def test_shm_factory_rejects_unknown_kwargs(self):
        with pytest.raises(ValueError, match="'shm'.*'bogus'"):
            new_channel("shm", ArrayEchoInterface, bogus=1)

    def test_shm_factory_lists_valid_options(self):
        with pytest.raises(ValueError, match="segment_size"):
            new_channel("shm", ArrayEchoInterface, daemon=object())

    def test_direct_rejects_compression_kwargs(self):
        with pytest.raises(ValueError, match="'direct'.*'compress'"):
            new_channel("direct", ArrayEchoInterface, compress=True)

    def test_sockets_accepts_compression_kwargs(self):
        ch = new_channel(
            "sockets", ArrayEchoInterface, compress=True,
            compress_min=4096,
        )
        try:
            assert ch.wire_caps.get("compress")
        finally:
            ch.stop()

    def test_subprocess_accepts_shm_kwargs(self):
        ch = new_channel(
            "subprocess", ArrayEchoInterface,
            shm_segment_size=1 << 20, **FAST,
        )
        try:
            assert isinstance(ch, SubprocessChannel)
            assert ch.wire_caps.get("shm") is True
        finally:
            ch.stop()
