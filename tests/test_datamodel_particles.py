"""Particle set data model tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.datamodel import Particles
from repro.units import nbody_system, units


@pytest.fixture
def stars():
    p = Particles(4)
    p.mass = np.array([1.0, 2.0, 3.0, 4.0]) | units.MSun
    p.position = np.zeros((4, 3)) | units.parsec
    p.velocity = np.zeros((4, 3)) | units.kms
    return p


class TestBasics:
    def test_len_and_keys_unique(self):
        p = Particles(10)
        assert len(p) == 10
        assert len(set(p.key)) == 10

    def test_keys_unique_across_sets(self):
        a, b = Particles(5), Particles(5)
        assert not set(a.key) & set(b.key)

    def test_scalar_broadcast(self):
        p = Particles(3)
        p.mass = 2.0 | units.MSun
        assert p.mass.value_in(units.MSun).tolist() == [2.0] * 3

    def test_vector_attribute_shape(self, stars):
        assert stars.position.shape == (4, 3)

    def test_unknown_attribute_raises(self, stars):
        with pytest.raises(AttributeError):
            stars.banana

    def test_unitless_attribute(self):
        p = Particles(3)
        p.flag = np.array([1, 2, 3])
        assert p.flag.tolist() == [1.0, 2.0, 3.0]

    def test_assign_number_to_united_attr_raises(self, stars):
        with pytest.raises(TypeError):
            stars.mass = np.ones(4)

    def test_unit_is_normalised_on_assignment(self, stars):
        stars.mass = 1000.0 | (0.001 * units.MSun)
        assert stars.mass.value_in(units.MSun)[0] == pytest.approx(1.0)

    def test_coordinate_views(self, stars):
        stars.position = np.arange(12.0).reshape(4, 3) | units.m
        assert stars.x.value_in(units.m).tolist() == [0, 3, 6, 9]
        assert stars.vz.value_in(units.kms).tolist() == [0] * 4


class TestParticleProxy:
    def test_single_particle_access(self, stars):
        assert stars[1].mass.value_in(units.MSun) == 2.0

    def test_single_particle_assignment(self, stars):
        stars[0].mass = 10.0 | units.MSun
        assert stars.mass.value_in(units.MSun)[0] == 10.0

    def test_negative_index(self, stars):
        assert stars[-1].mass.value_in(units.MSun) == 4.0

    def test_particle_equality_by_key(self, stars):
        assert stars[0] == stars[0]
        assert stars[0] != stars[1]

    def test_as_set(self, stars):
        sub = stars[2].as_set()
        assert len(sub) == 1
        assert sub.mass.value_in(units.MSun)[0] == 3.0


class TestSubsets:
    def test_slice(self, stars):
        sub = stars[1:3]
        assert len(sub) == 2
        assert sub.mass.value_in(units.MSun).tolist() == [2.0, 3.0]

    def test_boolean_mask(self, stars):
        heavy = stars[stars.mass.value_in(units.MSun) > 2.5]
        assert len(heavy) == 2

    def test_subset_assignment_writes_through(self, stars):
        sub = stars[0:2]
        sub.mass = np.array([9.0, 9.0]) | units.MSun
        assert stars.mass.value_in(units.MSun)[0] == 9.0

    def test_subset_copy_is_independent(self, stars):
        copy = stars[0:2].copy()
        copy.mass = 1.0 | units.MSun
        assert stars.mass.value_in(units.MSun)[0] == 1.0  # original


class TestSetOperations:
    def test_add_particles(self, stars):
        other = Particles(2)
        other.mass = 5.0 | units.MSun
        other.position = np.ones((2, 3)) | units.parsec
        other.velocity = np.zeros((2, 3)) | units.kms
        stars.add_particles(other)
        assert len(stars) == 6
        assert stars.mass.value_in(units.MSun)[-1] == 5.0

    def test_add_particles_converts_units(self, stars):
        other = Particles(1)
        other.mass = (1.0 | units.MSun).in_(units.kg)
        other.position = np.zeros((1, 3)) | units.parsec
        other.velocity = np.zeros((1, 3)) | units.kms
        stars.add_particles(other)
        assert stars.mass.value_in(units.MSun)[-1] == pytest.approx(1.0)

    def test_remove_particles(self, stars):
        stars.remove_particles(stars[1:3])
        assert len(stars) == 2
        assert stars.mass.value_in(units.MSun).tolist() == [1.0, 4.0]

    def test_copy_preserves_keys(self, stars):
        copy = stars.copy()
        assert np.array_equal(copy.key, stars.key)
        copy.mass = 0.0 | units.MSun
        assert stars.mass.value_in(units.MSun)[0] == 1.0


class TestChannels:
    def test_copy_attributes(self, stars):
        mirror = stars.copy()
        mirror.mass = mirror.mass * 3.0
        mirror.new_channel_to(stars).copy_attributes(["mass"])
        assert stars.mass.value_in(units.MSun)[1] == pytest.approx(6.0)

    def test_channel_matches_by_key_not_order(self, stars):
        shuffled = stars.copy()
        order = np.array([3, 2, 1, 0])
        reordered = Particles(keys=shuffled.key[order])
        reordered.mass = shuffled.mass[order] * 2.0
        reordered.new_channel_to(stars).copy_attributes(["mass"])
        assert stars.mass.value_in(units.MSun).tolist() == \
            [2.0, 4.0, 6.0, 8.0]

    def test_channel_creates_missing_attribute(self, stars):
        src = stars.copy()
        src.radius = np.ones(4) | units.RSun
        src.new_channel_to(stars).copy_attributes(["radius"])
        assert stars.radius.value_in(units.RSun).tolist() == [1.0] * 4

    def test_channel_unknown_keys_raise(self, stars):
        stranger = Particles(4)
        stranger.mass = 1.0 | units.MSun
        with pytest.raises(KeyError):
            stranger.new_channel_to(stars).copy_attributes(["mass"])


class TestDerivedPhysics:
    def test_total_mass(self, stars):
        assert stars.total_mass().value_in(units.MSun) == 10.0

    def test_center_of_mass(self, stars):
        stars.position = (
            np.array([[1.0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 0]])
            | units.parsec
        )
        com = stars.center_of_mass()
        assert com.value_in(units.parsec)[0] == pytest.approx(0.1)

    def test_move_to_center(self, stars):
        stars.position = np.ones((4, 3)) | units.parsec
        stars.move_to_center()
        assert np.allclose(
            stars.center_of_mass().value_in(units.parsec), 0.0
        )

    def test_kinetic_energy(self, stars):
        stars.velocity = (
            np.array([[1.0, 0, 0]] * 4) | (units.m / units.s)
        )
        ke = stars.kinetic_energy()
        total_kg = stars.total_mass().value_in(units.kg)
        assert ke.value_in(units.J) == pytest.approx(0.5 * total_kg)

    def test_potential_energy_two_body(self):
        p = Particles(2)
        p.mass = 1.0 | units.kg
        p.position = (
            np.array([[0.0, 0, 0], [1.0, 0, 0]]) | units.m
        )
        pe = p.potential_energy()
        from repro.units import constants
        assert pe.value_in(units.J) == pytest.approx(
            -constants.G.number
        )

    def test_lagrangian_radii_monotonic(self):
        from repro.ic import new_plummer_model
        p = new_plummer_model(200, rng=1)
        radii = p.lagrangian_radii().number
        assert np.all(np.diff(radii) > 0)

    def test_scale_to_standard(self):
        from repro.ic import new_plummer_model
        p = new_plummer_model(100, rng=2, do_scale=False)
        p.scale_to_standard()
        assert p.kinetic_energy().number == pytest.approx(0.25, rel=1e-6)
        assert p.potential_energy(
            G=nbody_system.G).number == pytest.approx(-0.5, rel=1e-6)


class TestPropertyBased:
    @given(st.integers(min_value=1, max_value=30))
    def test_add_then_remove_is_identity(self, n):
        base = Particles(5)
        base.mass = 1.0 | units.MSun
        extra = Particles(n)
        extra.mass = 2.0 | units.MSun
        base.add_particles(extra)
        base.remove_particles(extra)
        assert len(base) == 5
        assert base.mass.value_in(units.MSun).tolist() == [1.0] * 5

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=2, max_size=20,
        )
    )
    def test_total_mass_is_sum(self, masses):
        p = Particles(len(masses))
        p.mass = np.array(masses) | units.MSun
        assert p.total_mass().value_in(units.MSun) == pytest.approx(
            sum(masses), rel=1e-9
        )
