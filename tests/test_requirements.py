"""Traceability: the five requirements of paper Sec. 4.3.

"To successfully run High-Performance Distributed 3MK Simulations in a
Jungle Computing System, a number of requirements need to be
fulfilled."  One test class per requirement, asserting the repository
actually provides it (including the two the paper's prototype did NOT
fulfil, which this reproduction implements as extensions).
"""

import pytest

from repro.distributed import (
    DistributedAmuse,
    FaultPolicy,
    ResourceSpec,
    WorkerDiedError,
    discover_placement,
)
from repro.ibis.deploy import (
    ApplicationDescription,
    Deploy,
    parse_grid_description,
)
from repro.jungle import make_lab_jungle, make_sc11_jungle


def deployed_damuse(jungle=None, fault_policy=FaultPolicy.CRASH):
    jungle = jungle or make_sc11_jungle()
    damuse = DistributedAmuse(
        jungle, jungle.host("laptop"), fault_policy=fault_policy
    )
    damuse.add_resource(
        ResourceSpec("LGM", "LGM (LU)", "ssh", 1, needs_gpu=True)
    )
    damuse.add_resource(ResourceSpec("VU", "DAS-4 (VU)", "sge", 8))
    damuse.new_pilot("gravity", "LGM")
    damuse.new_pilot("hydro", "VU", node_count=8)
    assert damuse.wait_for_pilots()
    return jungle, damuse


class TestRequirement1EasyDeployment:
    """'it must be as easy as possible to deploy a simulation'"""

    def test_resource_config_is_a_small_file(self):
        grid = parse_grid_description(
            "[LGM]\nmiddleware = ssh\nnodes = 1\n"
        )
        assert grid["LGM"].middleware == "ssh"

    def test_one_call_deploys_a_worker(self):
        jungle = make_lab_jungle()
        deploy = Deploy(jungle, jungle.host("desktop"))
        job = deploy.submit(
            ApplicationDescription("amuse"),
            jungle.sites["LGM (LU)"], "gravity", needs_gpu=True,
        )
        assert deploy.wait_until_deployed()
        assert job.state == "RUNNING"

    def test_changing_a_kernel_is_one_argument(self):
        """'changing a model to a different implementation ... should
        be easy to do' — kernel choice is a constructor argument."""
        from repro.codes import PhiGRAPE

        for kernel in ("cpu", "gpu"):
            code = PhiGRAPE(kernel=kernel)
            assert code.parameters.kernel == kernel
            code.stop()


class TestRequirement2Communication:
    """'the application should be able to communicate between all
    resources' (fast and efficiently)"""

    def test_all_pairs_connect_on_sc11_topology(self):
        jungle, damuse = deployed_damuse()
        for pilot in damuse.pilots.values():
            assert getattr(pilot, "send_port", None) is not None

    def test_loopback_link_is_fast(self):
        """Real measurement: the daemon hop is sub-millisecond."""
        import time

        from repro.codes.phigrape import PhiGRAPEInterface
        from repro.distributed import DistributedChannel, IbisDaemon

        with IbisDaemon() as daemon:
            ch = DistributedChannel(
                PhiGRAPEInterface, daemon=daemon
            )
            ch.echo(b"warmup")
            t0 = time.perf_counter()
            for _ in range(50):
                ch.echo(b"x")
            per_call = (time.perf_counter() - t0) / 50
            ch.stop()
        assert per_call < 2e-3


class TestRequirement3Monitoring:
    """'it should be possible to do both performance and correctness
    monitoring of the system'"""

    def test_monitor_snapshot_covers_the_gui_panes(self):
        jungle, damuse = deployed_damuse()
        snapshot = damuse.monitor().snapshot()
        for pane in ("resources", "jobs", "overlay", "traffic_ipl",
                     "loads", "strategies"):
            assert pane in snapshot

    def test_correctness_monitoring_via_registry_events(self):
        jungle, damuse = deployed_damuse()
        events = []
        damuse.deploy.registry.add_listener(
            "watch", lambda ev, ident: events.append(ev)
        )
        damuse.pilots["hydro"].kill()
        assert "died" in events


class TestRequirement4Stability:
    """'it is of vital importance that the software is stable' — the
    paper's prototype crashes on worker loss; the extension recovers."""

    def test_paper_behaviour_crash(self):
        from repro.distributed import JungleRunner

        jungle, damuse = deployed_damuse()
        runner = JungleRunner(None, damuse)
        damuse.pilots["gravity"].kill()
        with pytest.raises(WorkerDiedError):
            runner.run_iteration()

    def test_extension_restart(self):
        jungle = make_sc11_jungle()
        damuse = DistributedAmuse(
            jungle, jungle.host("laptop"),
            fault_policy=FaultPolicy.RESTART,
        )
        damuse.add_resource(ResourceSpec("VU", "DAS-4 (VU)", "sge", 1))
        damuse.add_resource(ResourceSpec("SARA", "SARA", "pbs", 1))
        damuse.new_pilot("se", "VU")
        assert damuse.wait_for_pilots()
        damuse.pilots["se"].kill()
        assert damuse.wait_for_pilots()
        assert damuse.check_alive()


class TestRequirement5ResourceDiscovery:
    """'the automatic discovery of suitable resources' — unfulfilled in
    the paper ('we do not fulfill'), implemented here."""

    def test_user_supplies_only_the_resource_list(self):
        jungle = make_lab_jungle()
        placement, predicted = discover_placement(
            jungle, jungle.host("desktop")
        )
        assert predicted["total_s"] < 90.0   # beats both desktops
        assert placement.host("coupling").has_gpu

    def test_discovery_adapts_to_what_is_available(self):
        jungle = make_lab_jungle()
        anywhere, cost_all = discover_placement(
            jungle, jungle.host("desktop")
        )
        restricted, cost_restricted = discover_placement(
            jungle, jungle.host("desktop"),
            allowed_sites={"VU desktop"},
        )
        assert cost_restricted["total_s"] >= cost_all["total_s"]
        used = {
            restricted.host(r).site for r in restricted.roles()
        }
        assert used == {"VU desktop"}
