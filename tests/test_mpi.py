"""In-process MPI substrate tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import ANY_SOURCE, MpiError, World


def run(size, fn, *args):
    return World(size, timeout=30.0).run(fn, *args)


class TestPointToPoint:
    def test_send_recv(self):
        def program(comm):
            if comm.rank == 0:
                comm.send({"x": 1}, dest=1, tag=5)
                return None
            return comm.recv(source=0, tag=5)

        assert run(2, program)[1] == {"x": 1}

    def test_ring(self):
        def program(comm):
            comm.send(comm.rank, (comm.rank + 1) % comm.size, tag=1)
            return comm.recv(source=(comm.rank - 1) % comm.size, tag=1)

        assert run(4, program) == [3, 0, 1, 2]

    def test_tag_matching(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("b", dest=1, tag=2)
                comm.send("a", dest=1, tag=1)
                return None
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=2)
            return (first, second)

        assert run(2, program)[1] == ("a", "b")

    def test_any_source(self):
        def program(comm):
            if comm.rank != 0:
                comm.send(comm.rank, dest=0)
                return None
            return sorted(
                comm.recv(source=ANY_SOURCE) for _ in range(2)
            )

        assert run(3, program)[0] == [1, 2]

    def test_isend_irecv(self):
        def program(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait(timeout=10)

        assert run(2, program)[1] == [1, 2, 3]

    def test_probe(self):
        def program(comm):
            if comm.rank == 0:
                comm.send("hello", dest=1, tag=9)
                return None
            while not comm.probe(source=0, tag=9):
                pass
            return comm.recv(source=0, tag=9)

        assert run(2, program)[1] == "hello"

    def test_buffer_send_recv(self):
        def program(comm):
            if comm.rank == 0:
                comm.Send(np.arange(8.0), dest=1, tag=3)
                return None
            buf = np.zeros(8)
            comm.Recv(buf, source=0, tag=3)
            return buf.sum()

        assert run(2, program)[1] == 28.0

    def test_buffer_size_mismatch(self):
        def program(comm):
            if comm.rank == 0:
                comm.Send(np.arange(8.0), dest=1, tag=3)
                return None
            buf = np.zeros(4)
            with pytest.raises(MpiError):
                comm.Recv(buf, source=0, tag=3)
            return True

        assert run(2, program)[1] is True


class TestCollectives:
    def test_bcast(self):
        def program(comm):
            return comm.bcast(
                "payload" if comm.rank == 0 else None, root=0
            )

        assert run(3, program) == ["payload"] * 3

    def test_bcast_nonzero_root(self):
        def program(comm):
            return comm.bcast(
                comm.rank if comm.rank == 2 else None, root=2
            )

        assert run(3, program) == [2, 2, 2]

    def test_Bcast_buffer(self):
        def program(comm):
            data = (
                np.arange(4.0) if comm.rank == 0 else np.zeros(4)
            )
            comm.Bcast(data, root=0)
            return data.tolist()

        assert run(3, program) == [[0, 1, 2, 3]] * 3

    def test_scatter_gather(self):
        def program(comm):
            part = comm.scatter(
                [i * i for i in range(comm.size)]
                if comm.rank == 0 else None,
                root=0,
            )
            return comm.gather(part + 1, root=0)

        results = run(4, program)
        assert results[0] == [1, 2, 5, 10]
        assert results[1] is None

    def test_scatter_wrong_length(self):
        def program(comm):
            if comm.rank == 0:
                with pytest.raises(MpiError):
                    comm.scatter([1], root=0)
                # unblock peers
                comm.bcast("done", root=0)
            else:
                comm.bcast(None, root=0)
            return True

        assert all(run(3, program))

    def test_allgather(self):
        def program(comm):
            return comm.allgather(comm.rank * 10)

        assert run(3, program) == [[0, 10, 20]] * 3

    def test_alltoall(self):
        def program(comm):
            return comm.alltoall(
                [f"{comm.rank}->{j}" for j in range(comm.size)]
            )

        out = run(3, program)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_allreduce_ops(self):
        def program(comm):
            return (
                comm.allreduce(comm.rank + 1, "sum"),
                comm.allreduce(comm.rank + 1, "prod"),
                comm.allreduce(comm.rank + 1, "max"),
                comm.allreduce(comm.rank + 1, "min"),
            )

        assert run(3, program)[0] == (6, 6, 3, 1)

    def test_allreduce_arrays(self):
        def program(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), "sum")

        assert run(4, program)[0].tolist() == [6.0, 6.0, 6.0]

    def test_reduce_root_only(self):
        def program(comm):
            return comm.reduce(comm.rank, "sum", root=1)

        out = run(3, program)
        assert out[1] == 3 and out[0] is None

    def test_allgatherv(self):
        def program(comm):
            local = np.full((comm.rank + 1, 2), float(comm.rank))
            return comm.allgatherv(local).shape

        assert run(3, program)[0] == (6, 2)

    def test_barrier_syncs(self):
        def program(comm):
            comm.barrier()
            return True

        assert all(run(4, program))


class TestSplit:
    def test_split_into_halves(self):
        def program(comm):
            sub = comm.split(color=comm.rank % 2)
            return (sub.size, sub.allreduce(1, "sum"))

        assert run(4, program) == [(2, 2)] * 4

    def test_split_subcomm_isolated_tags(self):
        def program(comm):
            sub = comm.split(color=comm.rank // 2)
            if sub.rank == 0:
                sub.send(comm.rank, dest=1, tag=0)
                return None
            return sub.recv(source=0, tag=0)

        out = run(4, program)
        assert out[1] == 0 and out[3] == 2


class TestErrors:
    def test_world_size_validation(self):
        with pytest.raises(MpiError):
            World(0)

    def test_rank_out_of_range(self):
        def program(comm):
            with pytest.raises(MpiError):
                comm.send(1, dest=5)
            return True

        assert all(run(2, program))

    def test_exception_propagates(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return True

        with pytest.raises(ValueError, match="boom"):
            run(2, program)


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=2, max_size=6,
        )
    )
    def test_allreduce_matches_python_sum(self, values):
        def program(comm):
            return comm.allreduce(values[comm.rank], "sum")

        results = run(len(values), program)
        assert all(r == sum(values) for r in results)
