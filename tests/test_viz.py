"""Visualization / monitoring renderer tests."""

import numpy as np

from repro.viz import (
    StageTracker,
    radial_profile,
    render_job_table,
    render_loads,
    render_overlay,
    render_profile_ascii,
    render_resource_map,
    render_snapshot,
    render_traffic_matrix,
)


def snap(stage, t, bound, gas_r, star_r):
    return {
        "stage": stage,
        "time_myr": t,
        "bound_gas_fraction": bound,
        "gas_half_mass_radius_pc": gas_r,
        "star_half_mass_radius_pc": star_r,
    }


class TestStageTracker:
    def test_stage_sequence(self):
        tracker = StageTracker()
        for s in [
            snap("embedded", 0.0, 1.0, 0.5, 0.3),
            snap("embedded", 1.0, 0.9, 0.6, 0.3),
            snap("expanding", 2.0, 0.6, 0.9, 0.4),
            snap("shell", 3.0, 0.3, 1.5, 0.5),
            snap("expelled", 4.0, 0.02, 3.0, 0.8),
        ]:
            tracker.record(s)
        assert tracker.stages_seen == [
            "embedded", "expanding", "shell", "expelled"
        ]
        assert len(tracker.stage_table()) == 4
        assert tracker.is_monotonic_expulsion()
        assert tracker.cluster_expanded()

    def test_non_expanding_cluster(self):
        tracker = StageTracker()
        tracker.record(snap("embedded", 0.0, 1.0, 0.5, 0.5))
        tracker.record(snap("embedded", 1.0, 1.0, 0.5, 0.4))
        assert not tracker.cluster_expanded()

    def test_single_snapshot_edge_cases(self):
        tracker = StageTracker()
        tracker.record(snap("embedded", 0.0, 1.0, 0.5, 0.3))
        assert tracker.is_monotonic_expulsion()
        assert not tracker.cluster_expanded()


class TestRadialProfile:
    def test_uniform_shell_peak(self):
        rng = np.random.default_rng(0)
        # particles on a shell of radius 2
        directions = rng.normal(size=(500, 3))
        directions /= np.linalg.norm(directions, axis=1)[:, None]
        pos = 2.25 * directions
        edges, rho = radial_profile(
            pos, np.ones(500), center=np.zeros(3), n_bins=8, r_max=4.0
        )
        assert np.argmax(rho) == 4     # bin [2.0, 2.5) holds r=2.25

    def test_total_mass_recovered(self):
        rng = np.random.default_rng(1)
        pos = rng.normal(size=(200, 3)) * 0.3
        masses = rng.uniform(0.5, 1.0, 200)
        edges, rho = radial_profile(
            pos, masses, center=np.zeros(3), n_bins=10, r_max=5.0
        )
        volumes = 4.0 / 3.0 * np.pi * (
            edges[1:] ** 3 - edges[:-1] ** 3
        )
        assert (rho * volumes).sum() <= masses.sum() + 1e-9

    def test_ascii_render(self):
        edges = np.linspace(0, 2, 5)
        rho = np.array([4.0, 2.0, 1.0, 0.0])
        text = render_profile_ascii(edges, rho, label="test")
        assert "test" in text
        assert text.count("|") == 4


class TestMonitorRenderers:
    def test_all_panes(self):
        snapshot = {
            "time_s": 12.5,
            "resources": [
                {"site": "A", "kind": "cluster",
                 "location": (52.0, 4.0), "hosts": 9,
                 "middleware": ["sge"], "hub": True},
            ],
            "jobs": [
                {"id": 1, "name": "amuse-hydro", "site": "A",
                 "adaptor": "SgeAdaptor", "nodes": 8,
                 "state": "RUNNING", "role": "hydro"},
            ],
            "overlay": [("hubA", "hubB", "direct"),
                        ("laptop", "hubA", "one-way")],
            "traffic_ipl": {("A", "B"): 1024 ** 2},
            "traffic_mpi": {("A", "A"): 10 * 1024 ** 2},
            "loads": {"node0": {"cpu": 0.8, "gpu": 0.1}},
            "strategies": {"direct": 1, "reverse": 0, "routed": 2},
        }
        text = render_snapshot(snapshot)
        assert "RESOURCES" in text
        assert "amuse-hydro" in text
        assert "->" in render_overlay(snapshot["overlay"])
        assert "1.0MB" in render_traffic_matrix(
            snapshot["traffic_ipl"]
        )
        assert "cpu" in render_loads(snapshot["loads"])
        assert "routed" in text

    def test_traffic_human_bytes(self):
        text = render_traffic_matrix({("x", "y"): 5})
        assert "5B" in text

    def test_empty_tables(self):
        assert "JOBS" in render_job_table([])
        assert "RESOURCES" in render_resource_map([])
