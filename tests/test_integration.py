"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.coupling import EmbeddedClusterSimulation
from repro.distributed import (
    DistributedAmuse,
    IbisDaemon,
    JungleRunner,
    ResourceSpec,
)
from repro.jungle import make_lab_jungle, make_sc11_jungle
from repro.units import units
from repro.viz import StageTracker


class TestCoupledSimulationOverSockets:
    """The full 4-model simulation with every worker behind a REAL
    loopback TCP socket channel — the compute plane end to end."""

    def test_embedded_cluster_over_sockets(self):
        sim = EmbeddedClusterSimulation(
            n_stars=12, n_gas=64, rng=2, channel_type="sockets",
            bridge_timestep_myr=0.1,
        )
        sim.diagnostics()
        for _ in range(3):
            sim.evolve_one_iteration()
        d1 = sim.diagnostics()
        assert d1["time_myr"] == pytest.approx(0.3, rel=1e-6)
        assert d1["iteration"] == 3
        assert 0.0 <= d1["bound_gas_fraction"] <= 1.0
        sim.stop()

    def test_channel_choice_does_not_change_physics(self):
        results = {}
        for channel in ("direct", "sockets"):
            sim = EmbeddedClusterSimulation(
                n_stars=10, n_gas=48, rng=3, channel_type=channel,
                bridge_timestep_myr=0.1,
            )
            sim.evolve_one_iteration()
            results[channel] = sim.gravity.particles.position \
                .value_in(units.m).copy()
            sim.stop()
        assert np.allclose(
            results["direct"], results["sockets"], rtol=1e-12
        )


class TestStageProgression:
    """E3 mini-version: the Fig. 6 sequence appears in a short run."""

    @pytest.mark.slow
    def test_gas_expulsion_sequence(self):
        sim = EmbeddedClusterSimulation(
            n_stars=16, n_gas=128, rng=4, mass_min=5.0, mass_max=30.0,
            bridge_timestep_myr=0.5, se_interval=1,
            star_mass_fraction=0.3, sn_efficiency=2e-4,
            wind_speed_kms=30.0,
        )
        tracker = StageTracker()
        tracker.record(sim.diagnostics())
        for _ in range(22):
            sim.evolve_one_iteration()
            tracker.record(sim.diagnostics())
        stages = tracker.stages_seen
        assert stages[0] == "embedded"
        assert "expelled" in stages or "shell" in stages
        assert tracker.is_monotonic_expulsion()
        assert sim.n_supernovae >= 1
        sim.stop()


class TestDistributedEndToEnd:
    def test_daemon_plus_jungle_runner(self):
        """Real physics over the daemon channel + modeled jungle time
        in one run (the two execution planes together)."""
        with IbisDaemon() as daemon:
            sim = EmbeddedClusterSimulation(
                n_stars=10, n_gas=48, rng=5,
                channel_type="ibis",
                channel_types={
                    role: "ibis"
                    for role in ("gravity", "hydro", "se", "coupling")
                },
                code_factory=lambda cls, conv, ch, **kw:
                    _make_code(cls, conv, daemon, **kw),
                bridge_timestep_myr=0.1,
            )
            jungle = make_lab_jungle()
            damuse = DistributedAmuse(jungle, jungle.host("desktop"))
            damuse.add_resource(
                ResourceSpec("LGM", "LGM (LU)", "ssh", 1, True)
            )
            damuse.add_resource(
                ResourceSpec("VU", "DAS-4 (VU)", "sge", 8)
            )
            damuse.add_resource(
                ResourceSpec("UvA", "DAS-4 (UvA)", "sge", 1)
            )
            damuse.add_resource(
                ResourceSpec("TUD", "DAS-4 (TUD)", "sge", 2, True)
            )
            damuse.new_pilot("gravity", "LGM")
            damuse.new_pilot("hydro", "VU", node_count=8)
            damuse.new_pilot("se", "UvA", node_count=1)
            damuse.new_pilot("coupling", "TUD", node_count=2)
            assert damuse.wait_for_pilots()

            runner = JungleRunner(sim, damuse)
            costs = runner.run_iteration()
            assert costs["total_s"] > 0
            assert sim.iteration == 1
            monitor = damuse.monitor().snapshot()
            assert monitor["traffic_ipl"]
            sim.stop()

    def test_sc11_deployment_all_models_start(self):
        """E4 mini-version: the four models deploy across the
        transatlantic topology through four different middlewares."""
        jungle = make_sc11_jungle()
        damuse = DistributedAmuse(jungle, jungle.host("laptop"))
        damuse.add_resource(
            ResourceSpec("LGM", "LGM (LU)", "ssh", 1, True)
        )
        damuse.add_resource(ResourceSpec("VU", "DAS-4 (VU)", "sge", 8))
        damuse.add_resource(ResourceSpec("UvA", "DAS-4 (UvA)", "sge", 1))
        damuse.add_resource(
            ResourceSpec("TUD", "DAS-4 (TUD)", "sge", 2, True)
        )
        damuse.new_pilot("gravity", "LGM")
        damuse.new_pilot("hydro", "VU", node_count=8)
        damuse.new_pilot("se", "UvA")
        damuse.new_pilot("coupling", "TUD", node_count=2)
        assert damuse.wait_for_pilots()
        adaptors = {
            row["adaptor"] for row in damuse.deploy.job_table()
        }
        assert {"SshAdaptor", "SgeAdaptor"} <= adaptors


def _make_code(cls, conv, daemon, **kw):
    options = {"daemon": daemon, "resource": "integration"}
    if conv is None:
        return cls(channel_type="ibis", channel_options=options, **kw)
    return cls(conv, channel_type="ibis", channel_options=options,
               **kw)
