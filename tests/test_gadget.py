"""Gadget SPH interface tests."""

import numpy as np
import pytest

from repro.codes.gadget import (
    GadgetInterface,
    ParallelGadget,
    cubic_spline_gradient,
    cubic_spline_kernel,
)
from repro.ic import new_plummer_gas_model
from repro.mpi import World


def load_gas(interface, n=200, rng=1, **kwargs):
    gas = new_plummer_gas_model(n, rng=rng, **kwargs)
    p, v = gas.position.number, gas.velocity.number
    ids = interface.new_particle(
        gas.mass.number, p[:, 0], p[:, 1], p[:, 2],
        v[:, 0], v[:, 1], v[:, 2], gas.u.number,
    )
    return ids, gas


class TestKernelFunction:
    def test_normalisation(self):
        """Integral of W over its support must be 1."""
        h = 1.0
        r = np.linspace(0, 2 * h, 2000)
        w = cubic_spline_kernel(r, h)
        integral = np.trapezoid(4.0 * np.pi * r ** 2 * w, r)
        assert integral == pytest.approx(1.0, rel=1e-3)

    def test_compact_support(self):
        assert cubic_spline_kernel(2.1, 1.0) == 0.0
        assert cubic_spline_gradient(2.1, 1.0) == 0.0

    def test_gradient_negative_inside(self):
        r = np.linspace(0.1, 1.9, 50)
        assert np.all(cubic_spline_gradient(r, 1.0) < 0)

    def test_kernel_peak_at_center(self):
        assert cubic_spline_kernel(0.0, 1.0) > cubic_spline_kernel(
            0.5, 1.0
        )


class TestDensity:
    def test_density_positive(self):
        g = GadgetInterface()
        load_gas(g)
        g.ensure_state("RUN")
        assert np.all(g.get_density() > 0)

    def test_density_higher_in_center(self):
        g = GadgetInterface()
        ids, gas = load_gas(g, n=500)
        g.ensure_state("RUN")
        r = np.linalg.norm(g.get_position(), axis=1)
        rho = g.get_density()
        assert rho[r < 0.3].mean() > 3.0 * rho[r > 1.5].mean()

    def test_uniform_lattice_density(self):
        """A uniform lattice should give ~the lattice density."""
        g = GadgetInterface(self_gravity=False, n_neighbours=32)
        side = 8
        grid = np.stack(
            np.meshgrid(*[np.arange(side)] * 3), axis=-1
        ).reshape(-1, 3).astype(float)
        n = len(grid)
        g.new_particle(
            np.full(n, 1.0 / n), grid[:, 0], grid[:, 1], grid[:, 2],
            np.zeros(n), np.zeros(n), np.zeros(n), np.full(n, 1.0),
        )
        g.ensure_state("RUN")
        rho = g.get_density()
        interior = (
            (grid > 1.5).all(axis=1) & (grid < side - 2.5).all(axis=1)
        )
        expected = 1.0 / n  # one particle of mass 1/n per unit volume
        assert rho[interior].mean() == pytest.approx(expected, rel=0.2)


class TestDynamics:
    def test_energy_drift_bounded(self):
        g = GadgetInterface(courant=0.2)
        load_gas(g, n=150)
        g.ensure_state("RUN")
        e0 = g.get_total_energy()
        g.evolve_model(0.1)
        e1 = g.get_total_energy()
        assert abs((e1 - e0) / e0) < 0.05

    def test_hot_gas_expands(self):
        g = GadgetInterface(self_gravity=False)
        ids, gas = load_gas(g, n=150, virial_ratio=4.0)
        r0 = np.linalg.norm(g.get_position(), axis=1).mean()
        g.ensure_state("RUN")
        g.evolve_model(0.2)
        r1 = np.linalg.norm(g.get_position(), axis=1).mean()
        assert r1 > r0 * 1.05

    def test_model_time(self):
        g = GadgetInterface()
        load_gas(g, n=64)
        g.ensure_state("RUN")
        g.evolve_model(0.05)
        assert g.get_model_time() == pytest.approx(0.05, abs=1e-9)

    def test_internal_energy_floor(self):
        g = GadgetInterface()
        ids, gas = load_gas(g, n=64)
        g.set_internal_energy(ids, np.full(len(ids), 1e-15))
        g.ensure_state("RUN")
        g.evolve_model(0.02)
        assert np.all(g.get_internal_energy() > 0)


class TestFeedbackSurface:
    def test_add_internal_energy(self):
        g = GadgetInterface()
        ids, gas = load_gas(g, n=32)
        before = g.get_internal_energy(ids[:3]).copy()
        g.add_internal_energy(ids[:3], np.full(3, 10.0))
        after = g.get_internal_energy(ids[:3])
        assert np.allclose(after - before, 10.0)

    def test_thermal_energy_accounting(self):
        g = GadgetInterface()
        ids, gas = load_gas(g, n=32)
        e0 = g.get_thermal_energy()
        g.add_internal_energy(ids, np.full(len(ids), 1.0))
        e1 = g.get_thermal_energy()
        total_mass = g.get_mass().sum()
        assert e1 - e0 == pytest.approx(total_mass, rel=1e-9)


class TestParallel:
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_parallel_matches_serial(self, ranks):
        serial = GadgetInterface(max_dt=1.0 / 64.0)
        load_gas(serial, n=120, rng=9)
        serial.ensure_state("RUN")
        serial.evolve_model(1.0 / 16.0)

        par = GadgetInterface(max_dt=1.0 / 64.0)
        load_gas(par, n=120, rng=9)
        par.ensure_state("RUN")
        ParallelGadget(par, World(ranks)).evolve_model(1.0 / 16.0)

        assert np.allclose(
            serial.get_position(), par.get_position(),
            rtol=1e-9, atol=1e-12,
        )
        assert np.allclose(
            serial.get_internal_energy(), par.get_internal_energy(),
            rtol=1e-9,
        )

    def test_parallel_updates_model_time(self):
        g = GadgetInterface()
        load_gas(g, n=48)
        g.ensure_state("RUN")
        ParallelGadget(g, World(2)).evolve_model(0.03)
        assert g.model_time == pytest.approx(0.03, abs=1e-9)
