"""IPL tests: registry, ports, messages, fault tolerance."""

import numpy as np
import pytest

from repro.ibis.ipl import (
    DeadIbisError,
    Ibis,
    IplError,
    ONE_TO_ONE_OBJECT,
    PortType,
    Registry,
)
from repro.ibis.smartsockets import VirtualSocketFactory
from repro.jungle import FirewallPolicy, Host, Jungle


@pytest.fixture
def pool():
    j = Jungle()
    site = j.new_site("site", "cluster")
    a = site.add_host(Host("a", policy=FirewallPolicy.OPEN),
                      frontend=True)
    b = site.add_host(Host("b", policy=FirewallPolicy.OPEN))
    factory = VirtualSocketFactory(j)
    factory.overlay.add_hub(a)
    registry = Registry(j, pool="test")
    ibis_a = Ibis(registry, a, "alpha", factory)
    ibis_b = Ibis(registry, b, "beta", factory)
    return j, registry, ibis_a, ibis_b


def send_one(j, tx, rx_ibis, payload, port="in"):
    def client(env):
        if tx.connection is None:
            yield from tx.connect(rx_ibis.identifier, port)
        msg = tx.new_message()
        msg.write(payload)
        return (yield from msg.finish())

    p = j.env.process(client(j.env))
    j.env.run()
    if not p.ok:
        raise p._value
    return p.value


class TestRegistry:
    def test_members_after_join(self, pool):
        _, registry, ibis_a, ibis_b = pool
        assert registry.size() == 2

    def test_double_join_rejected(self, pool):
        j, registry, ibis_a, _ = pool
        with pytest.raises(IplError):
            registry.join(ibis_a)

    def test_join_left_events(self, pool):
        j, registry, ibis_a, ibis_b = pool
        events = []
        registry.add_listener(
            "t", lambda ev, ident: events.append((ev, ident.name))
        )
        site = j.sites["site"]
        c = site.add_host(Host("c", policy=FirewallPolicy.OPEN))
        ibis_c = Ibis(registry, c, "gamma", ibis_a.factory)
        ibis_c.end()
        assert events == [("joined", "gamma"), ("left", "gamma")]

    def test_elections_first_wins(self, pool):
        _, registry, ibis_a, ibis_b = pool
        winner = registry.elect("coordinator", ibis_a.identifier)
        later = registry.elect("coordinator", ibis_b.identifier)
        assert winner == later == ibis_a.identifier
        assert registry.get_election_result("coordinator") == \
            ibis_a.identifier

    def test_signals(self, pool):
        _, registry, ibis_a, ibis_b = pool
        registry.signal("pause", ibis_b.identifier)
        assert ibis_b.signals == ["pause"]
        assert ibis_a.signals == []

    def test_died_notification(self, pool):
        _, registry, ibis_a, ibis_b = pool
        died = []
        registry.add_listener(
            "mon", lambda ev, ident: died.append((ev, ident.name))
        )
        registry.declare_dead(ibis_b.identifier)
        assert ("died", "beta") in died
        assert registry.is_dead(ibis_b.identifier)
        assert registry.size() == 1


class TestPorts:
    def test_message_round_trip(self, pool):
        j, registry, ibis_a, ibis_b = pool
        rx = ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        send_one(j, tx, ibis_b, {"cmd": "go"})

        def server(env):
            msg = yield rx.receive()
            return msg.read()

        p = j.env.process(server(j.env))
        j.env.run()
        assert p.value == {"cmd": "go"}

    def test_array_payload_byte_accounting(self, pool):
        j, registry, ibis_a, ibis_b = pool
        rx = ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        n = send_one(j, tx, ibis_b, np.zeros(1000))
        assert n >= 8000
        assert rx.bytes_received == n
        assert tx.bytes_sent == n

    def test_fifo_order(self, pool):
        j, registry, ibis_a, ibis_b = pool
        rx = ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)

        def client(env):
            yield from tx.connect(ibis_b.identifier, "in")
            for i in range(3):
                msg = tx.new_message()
                msg.write(i)
                yield from msg.finish()

        def server(env):
            got = []
            for _ in range(3):
                msg = yield rx.receive()
                got.append(msg.read())
            return got

        j.env.process(client(j.env))
        p = j.env.process(server(j.env))
        j.env.run()
        assert p.value == [0, 1, 2]

    def test_upcall_delivery(self, pool):
        j, registry, ibis_a, ibis_b = pool
        received = []
        ibis_b.create_receive_port(
            ONE_TO_ONE_OBJECT, "in",
            upcall=lambda port, msg: received.append(msg.read()),
        )
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        send_one(j, tx, ibis_b, "ding")
        assert received == ["ding"]

    def test_explicit_receive_on_upcall_port_rejected(self, pool):
        j, registry, ibis_a, ibis_b = pool
        port = ibis_b.create_receive_port(
            ONE_TO_ONE_OBJECT, "in", upcall=lambda p, m: None
        )
        with pytest.raises(IplError):
            port.receive()

    def test_port_type_mismatch(self, pool):
        j, registry, ibis_a, ibis_b = pool
        other_type = PortType(PortType.CONNECTION_ONE_TO_MANY)
        ibis_b.create_receive_port(other_type, "in")
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        with pytest.raises(IplError):
            send_one(j, tx, ibis_b, "x")

    def test_duplicate_receive_port_name(self, pool):
        _, _, _, ibis_b = pool
        ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        with pytest.raises(IplError):
            ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")

    def test_unknown_port_name(self, pool):
        j, registry, ibis_a, ibis_b = pool
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        with pytest.raises(IplError):
            send_one(j, tx, ibis_b, "x", port="nope")

    def test_unconnected_send_rejected(self, pool):
        j, _, ibis_a, _ = pool
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        msg = tx.new_message()
        with pytest.raises(IplError):
            j.env.run_until_complete(
                j.env.process(msg.finish())
            )

    def test_message_exhaustion(self, pool):
        j, registry, ibis_a, ibis_b = pool
        rx = ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        send_one(j, tx, ibis_b, "only")

        def server(env):
            msg = yield rx.receive()
            msg.read()
            with pytest.raises(IplError):
                msg.read()
            return msg.remaining()

        p = j.env.process(server(j.env))
        j.env.run()
        assert p.value == 0


class TestFaultTolerance:
    def test_send_to_dead_ibis_raises(self, pool):
        j, registry, ibis_a, ibis_b = pool
        ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        send_one(j, tx, ibis_b, "first")
        registry.declare_dead(ibis_b.identifier)
        with pytest.raises(DeadIbisError):
            send_one(j, tx, ibis_b, "second")

    def test_connect_to_dead_ibis_raises(self, pool):
        j, registry, ibis_a, ibis_b = pool
        ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        registry.declare_dead(ibis_b.identifier)
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        with pytest.raises(DeadIbisError):
            send_one(j, tx, ibis_b, "x")

    def test_connect_to_unknown_ibis(self, pool):
        j, registry, ibis_a, ibis_b = pool
        ibis_b.end()
        ibis_b.create_receive_port(ONE_TO_ONE_OBJECT, "in")
        tx = ibis_a.create_send_port(ONE_TO_ONE_OBJECT)
        with pytest.raises(IplError):
            send_one(j, tx, ibis_b, "x")
