"""Ensemble campaign subsystem: specs, cache, aggregation, runner, CLI."""

import gzip
import json
import math
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.distributed import IbisDaemon, connect
from repro.ensemble import (
    CampaignRunner,
    CampaignSpec,
    Member,
    MemberContext,
    ResultCache,
    StreamingAggregate,
    canonical_json,
    register_workload,
    spec_key,
)
from repro.ensemble.workloads import WORKLOADS

# -- spec hashing ------------------------------------------------------------


def test_member_key_is_stable_across_processes():
    """The content address is a pure function of the spec text: this
    literal pins it across interpreter runs, hosts and PYTHONHASHSEED."""
    member = Member("drift", 1, {"n_steps": 3, "drift_scale": 1e-6})
    assert member.key() == (
        "68c5d0c4c89ba7286559aebb57e6dd47"
        "f2ee5082349bd1ac0740236098968876"
    )


def test_member_key_ignores_dict_insertion_order():
    a = Member("drift", 7, {"alpha": 1, "beta": 2, "gamma": [1, 2]})
    b = Member("drift", 7, {"gamma": [1, 2], "beta": 2, "alpha": 1})
    assert a.key() == b.key()
    assert a == b
    assert hash(a) == hash(b)


def test_member_keys_never_collide_across_distinct_specs():
    members = [
        Member("drift", 1, {"x": 1}),
        Member("drift", 1, {"x": 2}),
        Member("drift", 1, {"x": "1"}),        # type matters
        Member("drift", 1, {"x": 1.0}),        # int vs float matters
        Member("drift", 1, {"x": True}),       # bool is not 1
        Member("drift", 2, {"x": 1}),          # seed matters
        Member("sleep", 1, {"x": 1}),          # workload matters
        Member("drift", 1, {"x": [1, 2]}),
        Member("drift", 1, {"x": [2, 1]}),     # list order matters
        Member("drift", 1, {"x": {"y": 1}}),
        Member("drift", 1, {}),
    ]
    keys = [m.key() for m in members]
    assert len(set(keys)) == len(keys)


def test_member_rejects_non_canonical_parameters():
    with pytest.raises(ValueError):
        Member("drift", 0, {"bad": float("nan")})
    with pytest.raises(ValueError):
        Member("drift", 0, {"bad": float("inf")})
    with pytest.raises(ValueError):
        Member("drift", 0, {1: "non-string key"})
    with pytest.raises(ValueError):
        Member("drift", 0, {"bad": object()})
    with pytest.raises(ValueError):
        canonical_json({"x": np.float64})


def test_sweep_expands_cartesian_product():
    spec = CampaignSpec.sweep(
        "demo", "drift", seeds=[1, 2, 3],
        parameters={"eta": [0.05, 0.1], "n_steps": [2, 4]},
        base={"cost_s": 0.0},
    )
    assert len(spec) == 12
    assert len({m.key() for m in spec}) == 12
    assert all(m.parameters["cost_s"] == 0.0 for m in spec)


def test_spec_roundtrips_through_json(tmp_path):
    spec = CampaignSpec.sweep(
        "demo", "drift", seeds=[1, 2], parameters={"x": [1]}
    )
    path = tmp_path / "spec.json"
    spec.save(path)
    loaded = CampaignSpec.load(path)
    assert loaded.name == spec.name
    assert loaded.key() == spec.key()
    assert [m.key() for m in loaded] == [m.key() for m in spec]
    # the compact sweep form loads to the same members
    compact = CampaignSpec.from_dict({
        "name": "demo", "workload": "drift", "seeds": [1, 2],
        "parameters": {"x": [1]},
    })
    assert compact.key() == spec.key()
    with pytest.raises(ValueError):
        CampaignSpec.from_dict({"name": "no-members"})


def test_spec_key_helper_matches_member_key():
    member = Member("drift", 3)
    assert spec_key(member.to_dict()) == member.key()


# -- result cache ------------------------------------------------------------


def test_cache_roundtrip_and_accounting(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    member = Member("drift", 1, {"n_steps": 2})
    assert cache.get(member) is None             # miss
    cache.put(member, {"metrics": {"energy_drift": 1e-7}, "wall_s": 0.5})
    assert cache.contains(member)
    stored = cache.get(member)                   # hit
    assert stored["metrics"]["energy_drift"] == 1e-7
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["puts"] == 1
    assert stats["entries"] == 1


def test_cache_corrupted_entry_is_a_counted_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    member = Member("drift", 1)
    cache.put(member, {"metrics": {}, "wall_s": 0.1})
    path = cache._path(member.key())

    # truncated gzip stream
    with open(path, "wb") as fh:
        fh.write(b"\x1f\x8b\x08\x00garbage")
    assert cache.get(member) is None
    assert not os.path.exists(path)              # unlinked, not kept

    # valid gzip, invalid JSON
    cache.put(member, {"metrics": {}, "wall_s": 0.1})
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        fh.write("not json at all")
    assert cache.get(member) is None

    # valid document claiming the wrong key
    cache.put(member, {"metrics": {}, "wall_s": 0.1})
    with gzip.open(path, "rt", encoding="utf-8") as fh:
        document = json.load(fh)
    document["key"] = "0" * 64
    with gzip.open(path, "wt", encoding="utf-8") as fh:
        json.dump(document, fh)
    assert cache.get(member) is None

    assert cache.stats()["corrupt"] == 3
    # the cache still works after every recovery
    cache.put(member, {"metrics": {"ok": 1.0}, "wall_s": 0.1})
    assert cache.get(member)["metrics"]["ok"] == 1.0


def test_cache_entry_copied_to_another_key_never_serves(tmp_path):
    """Collision safety on disk: a file renamed onto another member's
    address is rejected by the stored-spec check."""
    cache = ResultCache(tmp_path / "cache")
    m1 = Member("drift", 1)
    m2 = Member("drift", 2)
    cache.put(m1, {"metrics": {"energy_drift": 1.0}, "wall_s": 0.1})
    src = cache._path(m1.key())
    dst = cache._path(m2.key())
    os.makedirs(os.path.dirname(dst), exist_ok=True)
    with open(src, "rb") as fh:
        blob = fh.read()
    with open(dst, "wb") as fh:
        fh.write(blob)
    assert cache.get(m2) is None
    assert cache.stats()["corrupt"] == 1
    # m1's own entry is untouched
    assert cache.get(m1)["metrics"]["energy_drift"] == 1.0


def test_cache_eviction_bound(tmp_path):
    cache = ResultCache(tmp_path / "cache", max_entries=5)
    members = [Member("drift", seed) for seed in range(12)]
    for i, member in enumerate(members):
        cache.put(member, {"metrics": {}, "wall_s": float(i)})
        assert len(cache) <= 5
    stats = cache.stats()
    assert stats["entries"] == 5
    assert stats["evictions"] == 7
    # the newest entries survive LRU eviction
    assert cache.contains(members[-1])


def test_cache_rejects_bad_max_entries(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path / "cache", max_entries=0)


# -- streaming aggregation ---------------------------------------------------


def test_retained_percentiles_match_numpy_reference():
    """Acceptance criterion: the retained-state path must agree with
    ``numpy.percentile`` within rtol 1e-9."""
    rng = np.random.default_rng(42)
    values = rng.lognormal(mean=-12.0, sigma=1.5, size=200)
    agg = StreamingAggregate(retain_limit=256)
    for v in values:
        agg.add({"energy_drift": float(v)})
    summary = agg.summary()["energy_drift"]
    assert summary["exact"] is True
    assert summary["count"] == 200
    np.testing.assert_allclose(summary["mean"], values.mean(), rtol=1e-9)
    np.testing.assert_allclose(
        summary["std"], values.std(ddof=1), rtol=1e-9
    )
    np.testing.assert_allclose(summary["min"], values.min(), rtol=1e-9)
    np.testing.assert_allclose(summary["max"], values.max(), rtol=1e-9)
    for p in (10.0, 50.0, 90.0):
        np.testing.assert_allclose(
            summary[f"p{p:g}"], np.percentile(values, p), rtol=1e-9
        )


def test_p2_estimators_take_over_past_retain_limit():
    rng = np.random.default_rng(7)
    values = rng.normal(loc=10.0, scale=2.0, size=5000)
    agg = StreamingAggregate(retain_limit=64)
    for v in values:
        agg.add({"wall_s": float(v)})
    summary = agg.summary()["wall_s"]
    assert summary["exact"] is False            # P2 path engaged
    assert summary["count"] == 5000
    # mean/min/max stay exact whatever the percentile path
    np.testing.assert_allclose(summary["mean"], values.mean(), rtol=1e-9)
    assert summary["min"] == values.min()
    assert summary["max"] == values.max()
    # P2 is approximate: bands must land near the true quantiles
    for p in (10.0, 50.0, 90.0):
        reference = np.percentile(values, p)
        assert abs(summary[f"p{p:g}"] - reference) < 0.2, (p, reference)


def test_aggregate_skips_non_numeric_and_non_finite():
    agg = StreamingAggregate()
    agg.add({"a": 1.0, "b": "stage-name", "c": float("nan"),
             "d": True, "e": None})
    agg.add({"a": 3.0, "c": 2.0})
    summary = agg.summary()
    assert summary["a"]["count"] == 2
    assert summary["a"]["mean"] == 2.0
    assert summary["c"]["count"] == 1           # the NaN was dropped
    assert "b" not in summary
    assert "d" not in summary
    assert agg.samples == 2


def test_aggregate_empty_metric_summary():
    agg = StreamingAggregate()
    assert agg.table() == "(no metrics)"
    agg.add({"x": 1.0})
    assert "x" in agg.table()
    single = agg.summary()["x"]
    assert single["std"] == 0.0
    assert math.isfinite(single["p50"])


# -- runner ------------------------------------------------------------------


def _drift_sweep(n=6, **base):
    base.setdefault("cost_s", 0.0)
    base.setdefault("n_steps", 3)
    return CampaignSpec.sweep(
        "test-campaign", "drift", seeds=range(n), base=base
    )


def test_runner_end_to_end_local():
    spec = _drift_sweep(6)
    report = CampaignRunner(spec, max_inflight=3).run(timeout=120)
    assert report.ok
    assert report.completed == 6
    assert report.cached == 0
    assert len(report.results) == 6
    # results arrive indexed by member, whatever the completion order
    for member, result in zip(spec, report.results, strict=True):
        assert result.member is member
        assert result.metrics["energy_drift"] > 0.0
    summary = report.aggregate.summary()
    assert summary["energy_drift"]["count"] == 6
    assert summary["wall_s"]["count"] == 6


def test_runner_results_are_deterministic_per_seed():
    spec = _drift_sweep(4)
    first = CampaignRunner(spec, max_inflight=2).run(timeout=120)
    second = CampaignRunner(spec, max_inflight=4).run(timeout=120)
    for a, b in zip(first.results, second.results, strict=True):
        assert a.metrics["energy_drift"] == b.metrics["energy_drift"]
        assert a.metrics["mass_loss"] == b.metrics["mass_loss"]


def test_runner_cache_resubmission_hits(tmp_path):
    spec = _drift_sweep(5)
    cache = ResultCache(tmp_path / "cache")
    cold = CampaignRunner(spec, cache=cache).run(timeout=120)
    assert cold.completed == 5
    warm = CampaignRunner(spec, cache=cache).run(timeout=120)
    assert warm.cached == 5
    assert warm.completed == 0
    # cached metrics are the stored ones, bit-for-bit
    for a, b in zip(cold.results, warm.results, strict=True):
        assert a.metrics == b.metrics
    assert warm.cache_stats["hits"] == 5


def test_runner_refresh_mode_reruns_and_rewrites(tmp_path):
    spec = _drift_sweep(3)
    cache = ResultCache(tmp_path / "cache")
    CampaignRunner(spec, cache=cache).run(timeout=120)
    refreshed = CampaignRunner(
        spec, cache=cache, resume=False
    ).run(timeout=120)
    assert refreshed.completed == 3
    assert refreshed.cached == 0
    assert cache.stats()["puts"] == 6


def test_runner_isolates_a_failing_member():
    """A member that raises a genuine model error fails alone."""

    @register_workload("always-fails")
    def _fail(member, ctx):
        raise RuntimeError("intentional model error")

    try:
        members = [Member("drift", s, {"cost_s": 0.0}) for s in (1, 2)]
        members.insert(1, Member("always-fails", 0))
        report = CampaignRunner(
            CampaignSpec("faulty", members), max_inflight=2
        ).run(timeout=120)
    finally:
        WORKLOADS.pop("always-fails", None)
    assert report.failed == 1
    assert report.completed == 2
    (failure,) = report.failures()
    assert failure.member.workload == "always-fails"
    assert "intentional model error" in failure.error
    assert failure.restarts == 0        # model errors are never retried


def test_runner_unknown_workload_fails_that_member_only():
    members = [Member("drift", 1, {"cost_s": 0.0}),
               Member("no-such-workload", 0)]
    report = CampaignRunner(CampaignSpec("bad", members)).run(timeout=60)
    assert report.failed == 1
    assert report.completed == 1


def test_runner_max_inflight_bounds_concurrency():
    lock = threading.Lock()
    state = {"now": 0, "peak": 0}

    @register_workload("probe")
    def _probe(member, ctx):
        with lock:
            state["now"] += 1
            state["peak"] = max(state["peak"], state["now"])
        time.sleep(0.05)
        with lock:
            state["now"] -= 1
        return {}

    try:
        spec = CampaignSpec(
            "window", [Member("probe", s) for s in range(10)]
        )
        report = CampaignRunner(spec, max_inflight=3).run(timeout=60)
    finally:
        WORKLOADS.pop("probe", None)
    assert report.completed == 10
    assert 1 <= state["peak"] <= 3


def test_on_member_done_hooks_stream_and_survive_errors(capsys):
    seen = []
    runner = CampaignRunner(
        _drift_sweep(4), max_inflight=2,
        on_member_done=lambda m, r: seen.append((m.seed, r.status)),
    )

    @runner.on_member_done
    def _broken_hook(member, result):
        raise RuntimeError("hook exploded")

    report = runner.run(timeout=120)
    assert report.completed == 4            # broken hook cost nothing
    assert sorted(s for s, _ in seen) == [0, 1, 2, 3]
    assert all(status == "ok" for _, status in seen)


def test_member_context_sessionless_modes():
    ctx = MemberContext(session=None, worker_mode=None)
    assert ctx._local_type("thread") == "sockets"
    assert ctx._local_type(None) == "sockets"
    assert ctx._local_type("subprocess") == "subprocess"
    ctx.close()                              # nothing placed: no-op


# -- campaigns over daemon sessions ------------------------------------------


@pytest.mark.network
def test_campaign_bills_sessions_and_merges_into_status():
    spec = _drift_sweep(6)
    with IbisDaemon() as daemon:
        with connect(daemon, name="camp-a") as s1, \
                connect(daemon, name="camp-b") as s2:
            report = CampaignRunner(
                spec, sessions=[s1, s2], max_inflight=3
            ).run(timeout=120)
            assert report.ok
            acct1 = s1.status()["campaigns"]["test-campaign"]
            acct2 = s2.status()["campaigns"]["test-campaign"]
    # round-robin: 6 members over 2 sessions = 3 each
    assert acct1["members"] == 3
    assert acct2["members"] == 3
    assert acct1["ok"] == 3 and acct1["failed"] == 0
    assert acct1["wall_s"] > 0.0


@pytest.mark.network
def test_crashed_member_fails_alone_over_sessions():
    members = [Member("sleep", s, {"cost_s": 0.02}) for s in range(4)]
    members.insert(2, Member("crash", 0, {"cost_s": 0.3}))
    spec = CampaignSpec("crashy", members)
    with IbisDaemon() as daemon:
        with connect(daemon, name="crash-test") as session:
            report = CampaignRunner(
                spec, sessions=session, worker_mode="subprocess",
                max_inflight=2,
            ).run(timeout=300)
            campaigns = session.status()["campaigns"]
    assert report.failed == 1
    assert report.completed == 4
    (failure,) = report.failures()
    assert failure.member.workload == "crash"
    assert failure.restarts == 1            # retried on a fresh pilot
    assert campaigns["crashy"]["failed"] == 1
    assert campaigns["crashy"]["ok"] == 4


def test_session_rejects_unknown_member_status():
    with IbisDaemon() as daemon:
        with connect(daemon) as session:
            with pytest.raises(ValueError):
                session.note_campaign_member("c", "exploded", 1.0)


# -- CLI ---------------------------------------------------------------------


def _run_cli(args, cwd):
    env = dict(os.environ)
    src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "src",
    )
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.ensemble", *args],
        capture_output=True, text=True, cwd=cwd, env=env, timeout=120,
    )


def test_cli_runs_and_resumes_a_campaign(tmp_path):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(json.dumps({
        "name": "cli-demo",
        "workload": "drift",
        "seeds": [0, 1, 2],
        "base": {"cost_s": 0.0, "n_steps": 2},
    }))
    cache_dir = tmp_path / "cache"

    cold = _run_cli(
        ["--spec", str(spec_path), "--cache", str(cache_dir),
         "--local"],
        cwd=tmp_path,
    )
    assert cold.returncode == 0, cold.stderr
    assert "3 members" in cold.stdout
    assert "3 ran" in cold.stdout
    assert "energy_drift" in cold.stdout

    resumed = _run_cli(
        ["--spec", str(spec_path), "--cache", str(cache_dir),
         "--local", "--resume", "--json"],
        cwd=tmp_path,
    )
    assert resumed.returncode == 0, resumed.stderr
    payload = json.loads(resumed.stdout)
    assert payload["cached"] == 3
    assert payload["completed"] == 0
    assert payload["cache"]["hits"] == 3


def test_cli_bad_spec_exits_2(tmp_path):
    spec_path = tmp_path / "broken.json"
    spec_path.write_text("{not json")
    result = _run_cli(["--spec", str(spec_path), "--local"], cwd=tmp_path)
    assert result.returncode == 2
    assert "bad spec" in result.stderr
