"""Self-tests for the repro.analysis invariant checker.

Each rule family must detect its seeded-bug fixture (and stay quiet on
the clean fixture), the baseline workflow must round-trip, the
committed tree must be baseline-clean, and the lockwatch runtime
companion must record real acquisition orders and cross-validate them
against the static lock graph.
"""

import importlib.util
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.analysis import Baseline, Finding, Project, analyze, run_rules
from repro.analysis import lockwatch
from repro.analysis.locks import build_lock_graph

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
REPO = Path(__file__).parents[1]


def _keys(findings):
    return [finding.key for finding in findings]


# -- rule families against seeded fixtures -----------------------------------


class TestRuleFamilies:
    def test_deadlock_cycle_detected(self):
        keys = _keys(analyze(
            str(FIXTURES / "deadlock.py"), rules=["lock-order"]
        ))
        cycle = [k for k in keys if k.startswith("lock-order:cycle:")]
        assert len(cycle) == 1
        assert "_accounts" in cycle[0] and "_audit_log" in cycle[0]

    def test_send_section_acquisition_detected(self):
        keys = _keys(analyze(
            str(FIXTURES / "deadlock.py"), rules=["lock-order"]
        ))
        assert any(
            k.startswith("lock-order:send-section:")
            and "_send_lock" in k
            for k in keys
        )

    def test_reader_thread_blocking_detected(self):
        findings = analyze(
            str(FIXTURES / "reader_block.py"), rules=["reader-blocking"]
        )
        assert len(findings) == 1
        key = findings[0].key
        assert "_reader_loop" in key
        assert key.endswith("->result@reader_block.py::"
                            "BlockingChannel._deliver")

    def test_orphaned_magic_constant_detected(self):
        keys = _keys(analyze(
            str(FIXTURES / "orphan_magic.py"),
            rules=["frame-conformance"],
        ))
        assert any("magic" in k and "MAGIC_ORPHAN" in k for k in keys)
        # the constant that IS packed and compared stays quiet
        assert not any("MAGIC_USED" in k for k in keys)

    def test_leaked_shm_segment_detected(self):
        findings = analyze(
            str(FIXTURES / "leak_shm.py"), rules=["resource-lifecycle"]
        )
        assert _keys(findings) == [
            "lifecycle:shm:leak_shm.py::LeakyArena.__init__"
        ]

    def test_clean_fixture_has_no_findings(self):
        assert analyze(str(FIXTURES / "clean.py")) == []

    def test_unknown_rule_rejected(self):
        project = Project([FIXTURES / "clean.py"])
        with pytest.raises(KeyError, match="no-such-rule"):
            run_rules(project, ["no-such-rule"])


# -- baseline workflow -------------------------------------------------------


class TestBaseline:
    def _finding(self, key):
        return Finding(
            rule="demo", path="x.py", line=1, message="m", key=key
        )

    def test_split_and_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.write(path, [self._finding("a"), self._finding("b")])
        baseline = Baseline.load(path)
        new, accepted = baseline.split(
            [self._finding("b"), self._finding("c")]
        )
        assert _keys(new) == ["c"]
        assert _keys(accepted) == ["b"]
        assert baseline.stale_keys([self._finding("b")]) == ["a"]

    def test_committed_tree_is_baseline_clean(self):
        """The CI gate, as a test: the checker over src/repro finds
        nothing beyond the committed, justified baseline."""
        findings = analyze(str(REPO / "src" / "repro"))
        baseline = Baseline.load(REPO / "analysis-baseline.json")
        new, _ = baseline.split(findings)
        assert new == []
        # and every baseline entry is still live (no stale mutes)
        assert baseline.stale_keys(findings) == []
        # the baseline is reviewed, not a mute button
        for key, justification in baseline.entries.items():
            assert len(justification) > 40, key

    def test_cli_exits_zero_on_committed_tree(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src/repro"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_cli_flags_seeded_fixture(self, tmp_path):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.analysis",
                str(FIXTURES / "deadlock.py"),
                "--baseline", str(tmp_path / "none.json"),
            ],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "lock-order:cycle:" in proc.stdout


# -- lockwatch runtime companion ---------------------------------------------


@pytest.fixture
def watched_pair():
    """Import the runtime fixture with the watcher installed, yielding
    a fresh Pair whose locks are instrumented."""
    was_installed = lockwatch.installed()
    lockwatch.install()
    lockwatch.reset()
    spec = importlib.util.spec_from_file_location(
        "runtime_pair", FIXTURES.parent / "repro" / "runtime_pair.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    try:
        yield module.Pair()
    finally:
        lockwatch.reset()
        if not was_installed:       # REPRO_LOCKWATCH=1 runs keep it
            lockwatch.uninstall()


class TestLockwatch:
    def _graph(self):
        return build_lock_graph(
            Project([FIXTURES.parent / "repro" / "runtime_pair.py"])
        )

    def test_consistent_order_validates_clean(self, watched_pair):
        watched_pair.forward()
        findings, stats = lockwatch.validate_report(
            {"edges": lockwatch.report()}, self._graph()
        )
        assert findings == []
        assert stats["observed"] == 1
        assert stats["matched"] == 1

    def test_reversed_order_is_a_divergence(self, watched_pair):
        watched_pair.forward()
        # a second thread takes the same pair the other way around —
        # exactly the latent deadlock the cross-validation exists for
        def backward():
            with watched_pair._second:
                with watched_pair._first:
                    pass

        thread = threading.Thread(target=backward)
        thread.start()
        thread.join(timeout=5)
        findings, stats = lockwatch.validate_report(
            {"edges": lockwatch.report()}, self._graph()
        )
        assert stats["matched"] == 2
        keys = _keys(findings)
        assert any(k.startswith("lockwatch:order:") for k in keys)
        assert any(k.startswith("lockwatch:conflict:") for k in keys)

    def test_untracked_locks_stay_raw(self, watched_pair):
        # created from a non-repro path (this test file): unwrapped
        lock = threading.Lock()
        assert not isinstance(lock, lockwatch._WatchedLock)
        assert isinstance(
            watched_pair._first, lockwatch._WatchedLock
        )

    def test_dump_round_trips(self, watched_pair, tmp_path):
        watched_pair.forward()
        out = tmp_path / "lockwatch.json"
        lockwatch.dump(out)
        data = json.loads(out.read_text())
        assert data["version"] == 1
        findings, stats = lockwatch.validate_report(
            data, self._graph()
        )
        assert findings == []
        assert stats["matched"] == 1

    def test_install_is_idempotent_and_reversible(self):
        was_installed = lockwatch.installed()
        lockwatch.install()
        lockwatch.install()
        assert lockwatch.installed()
        lockwatch.uninstall()
        assert not lockwatch.installed()
        assert threading.Lock is lockwatch._REAL_LOCK
        if was_installed:           # REPRO_LOCKWATCH=1 runs keep it
            lockwatch.install()
