"""PhiGRAPE (Hermite direct N-body) interface tests."""

import numpy as np
import pytest

from repro.codes import CodeStateError
from repro.codes.phigrape import PhiGRAPEInterface
from repro.ic import new_plummer_model


def load_plummer(interface, n=64, rng=0):
    p = new_plummer_model(n, rng=rng)
    pos, vel, mass = p.position.number, p.velocity.number, p.mass.number
    return interface.new_particle(
        mass, pos[:, 0], pos[:, 1], pos[:, 2],
        vel[:, 0], vel[:, 1], vel[:, 2],
    )


class TestParticleManagement:
    def test_add_and_count(self):
        grav = PhiGRAPEInterface()
        ids = load_plummer(grav, 10)
        assert len(ids) == 10
        assert grav.get_number_of_particles() == 10

    def test_get_state_round_trip(self):
        grav = PhiGRAPEInterface()
        ids = grav.new_particle(
            [1.0], [0.1], [0.2], [0.3], [1.0], [2.0], [3.0]
        )
        m, x, y, z, vx, vy, vz = grav.get_state(ids)
        assert (x[0], y[0], z[0]) == (0.1, 0.2, 0.3)
        assert (vx[0], vy[0], vz[0]) == (1.0, 2.0, 3.0)

    def test_delete(self):
        grav = PhiGRAPEInterface()
        ids = load_plummer(grav, 5)
        grav.delete_particle(ids[:2])
        assert grav.get_number_of_particles() == 3

    def test_set_mass_does_not_invalidate(self):
        grav = PhiGRAPEInterface()
        ids = load_plummer(grav)
        grav.ensure_state("RUN")
        grav.set_mass(ids[:1], [0.5])
        assert grav.state == "RUN"

    def test_position_edit_invalidates(self):
        grav = PhiGRAPEInterface()
        ids = load_plummer(grav)
        grav.ensure_state("RUN")
        grav.set_position(ids[:1], np.zeros((1, 3)))
        assert grav.state == "EDIT"


class TestDynamics:
    def test_energy_conservation(self):
        grav = PhiGRAPEInterface(eps2=1e-3, eta=0.02)
        load_plummer(grav, 64)
        grav.ensure_state("RUN")
        e0 = grav.get_total_energy()
        grav.evolve_model(0.25)
        e1 = grav.get_total_energy()
        assert abs((e1 - e0) / e0) < 1e-8

    def test_two_body_circular_orbit_period(self):
        """Equal-mass binary, total mass 1, separation 1: T = 2*pi/
        sqrt(2) in G=1 units (relative orbit a=1 around M=1)."""
        grav = PhiGRAPEInterface(eps2=0.0, eta=0.005)
        v = 0.5  # each body: v = sqrt(G M / (4 a)) with M=1, a=0.5
        grav.new_particle(
            [0.5, 0.5], [0.5, -0.5], [0.0, 0.0], [0.0, 0.0],
            [0.0, 0.0], [v, -v], [0.0, 0.0],
        )
        grav.ensure_state("RUN")
        period = 2.0 * np.pi
        grav.evolve_model(period)
        pos = grav.get_position()
        assert pos[0, 0] == pytest.approx(0.5, abs=0.01)
        assert pos[0, 1] == pytest.approx(0.0, abs=0.01)

    def test_model_time_advances(self):
        grav = PhiGRAPEInterface(eta=0.05)
        load_plummer(grav)
        grav.ensure_state("RUN")
        grav.evolve_model(0.125)
        assert grav.get_model_time() == pytest.approx(0.125, rel=1e-9)

    def test_kernel_variants_identical(self):
        results = []
        for kernel in ("cpu", "gpu"):
            grav = PhiGRAPEInterface(kernel=kernel, eta=0.05)
            load_plummer(grav, 32, rng=5)
            grav.ensure_state("RUN")
            grav.evolve_model(0.1)
            results.append(grav.get_position().copy())
        assert np.array_equal(results[0], results[1])

    def test_kernel_device_tag(self):
        assert PhiGRAPEInterface(kernel="gpu").KERNEL_DEVICE == "gpu"
        assert PhiGRAPEInterface().KERNEL_DEVICE == "cpu"

    def test_invalid_kernel_rejected(self):
        grav = PhiGRAPEInterface(kernel="tpu")
        with pytest.raises(ValueError):
            grav.ensure_state("RUN")

    def test_empty_system_evolves(self):
        grav = PhiGRAPEInterface()
        grav.ensure_state("RUN")
        grav.evolve_model(1.0)
        assert grav.get_model_time() == 1.0

    def test_interaction_counter_grows(self):
        grav = PhiGRAPEInterface(eta=0.05)
        load_plummer(grav, 32)
        grav.ensure_state("RUN")
        before = grav.interaction_count
        grav.evolve_model(0.05)
        assert grav.interaction_count > before


class TestBridgeSurface:
    def test_gravity_at_point_far_field(self):
        grav = PhiGRAPEInterface()
        load_plummer(grav, 128, rng=1)
        acc = grav.get_gravity_at_point(1e-4, np.array([[10.0, 0, 0]]))
        assert acc[0, 0] == pytest.approx(-1.0 / 100.0, rel=0.05)

    def test_potential_at_point(self):
        grav = PhiGRAPEInterface()
        load_plummer(grav, 128, rng=1)
        phi = grav.get_potential_at_point(
            1e-4, np.array([[10.0, 0, 0]])
        )
        assert phi[0] == pytest.approx(-0.1, rel=0.05)

    def test_center_of_mass(self):
        grav = PhiGRAPEInterface()
        load_plummer(grav, 64, rng=2)
        assert np.allclose(grav.get_center_of_mass(), 0.0, atol=1e-10)


class TestStateModel:
    def test_state_chain(self):
        grav = PhiGRAPEInterface()
        assert grav.state == "UNINITIALIZED"
        grav.ensure_state("RUN")
        assert grav.state == "RUN"

    def test_stopped_is_terminal(self):
        grav = PhiGRAPEInterface()
        grav.stop()
        with pytest.raises(CodeStateError):
            grav.ensure_state("RUN")

    def test_parameter_set_after_commit_rejected(self):
        grav = PhiGRAPEInterface()
        grav.ensure_state("RUN")
        with pytest.raises(CodeStateError):
            grav.set_parameter("eta", 0.1)

    def test_unknown_parameter(self):
        with pytest.raises(TypeError):
            PhiGRAPEInterface(bogus=1)
        grav = PhiGRAPEInterface()
        with pytest.raises(KeyError):
            grav.get_parameter("bogus")

    def test_parameter_names(self):
        grav = PhiGRAPEInterface()
        assert "eps2" in grav.parameter_names()
