"""RPC layer tests: protocol framing, channels, async requests."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rpc import (
    DirectChannel,
    ProtocolError,
    RemoteError,
    SocketChannel,
    new_channel,
    pack_frame,
    recv_frame,
    wait_all,
)
from repro.rpc.channel import AsyncRequest


class _FakeSocket:
    """Minimal in-memory socket for protocol tests."""

    def __init__(self, data=b""):
        self._rx = io.BytesIO(data)
        self.sent = bytearray()

    def sendall(self, data):
        self.sent.extend(data)

    def recv(self, n):
        return self._rx.read(n)


class _EchoInterface:
    def __init__(self):
        self.stopped = False

    def echo(self, value):
        return value

    def add(self, a, b=0):
        return a + b

    def boom(self):
        raise ValueError("kapow")

    def array_sum(self, arr):
        return float(np.asarray(arr).sum())

    def stop(self):
        self.stopped = True
        return 0


class TestProtocol:
    def test_frame_round_trip(self):
        message = ("call", 1, "method", (1, 2), {"k": "v"})
        sock = _FakeSocket(pack_frame(message))
        assert recv_frame(sock) == message

    def test_bad_magic_rejected(self):
        data = b"XXXX" + pack_frame(("result", 1, None))[4:]
        with pytest.raises(ProtocolError):
            recv_frame(_FakeSocket(data))

    def test_truncated_frame(self):
        data = pack_frame(("result", 1, None))[:-3]
        with pytest.raises(ProtocolError):
            recv_frame(_FakeSocket(data))

    def test_eof(self):
        with pytest.raises(ProtocolError):
            recv_frame(_FakeSocket(b""))

    def test_large_array_payload(self):
        arr = np.arange(100000, dtype=np.float64)
        message = ("result", 2, arr)
        out = recv_frame(_FakeSocket(pack_frame(message)))
        assert np.array_equal(out[2], arr)

    @settings(max_examples=30, deadline=None)
    @given(
        st.tuples(
            st.text(max_size=20),
            st.integers(),
            st.lists(st.floats(allow_nan=False), max_size=10),
        )
    )
    def test_arbitrary_picklable_round_trip(self, payload):
        message = ("result", 1, payload)
        assert recv_frame(_FakeSocket(pack_frame(message))) == message


class TestAsyncRequest:
    def test_completed(self):
        req = AsyncRequest.completed(42)
        assert req.is_result_available()
        assert req.result() == 42

    def test_failed(self):
        req = AsyncRequest.failed(ValueError("x"))
        with pytest.raises(ValueError):
            req.result()

    def test_timeout(self):
        req = AsyncRequest()
        with pytest.raises(TimeoutError):
            req.wait(timeout=0.01)

    def test_wait_all(self):
        reqs = [AsyncRequest.completed(i) for i in range(3)]
        assert wait_all(reqs) == [0, 1, 2]


class TestDirectChannel:
    def test_call(self):
        ch = DirectChannel(_EchoInterface)
        assert ch.call("add", 1, b=2) == 3

    def test_async_call(self):
        ch = DirectChannel(_EchoInterface)
        assert ch.async_call("echo", "hi").result() == "hi"

    def test_async_error(self):
        ch = DirectChannel(_EchoInterface)
        req = ch.async_call("boom")
        with pytest.raises(ValueError):
            req.result()

    def test_stop_calls_interface_stop(self):
        ch = DirectChannel(_EchoInterface)
        iface = ch.interface
        ch.stop()
        assert iface.stopped
        with pytest.raises(ProtocolError):
            ch.call("echo", 1)

    def test_context_manager(self):
        with DirectChannel(_EchoInterface) as ch:
            assert ch.call("echo", 5) == 5


@pytest.mark.network
class TestSocketChannel:
    def test_call_over_tcp(self):
        with SocketChannel(_EchoInterface) as ch:
            assert ch.call("add", 3, b=4) == 7

    def test_numpy_payload(self):
        with SocketChannel(_EchoInterface) as ch:
            assert ch.call("array_sum", np.ones(1000)) == 1000.0

    def test_remote_error_propagates(self):
        with SocketChannel(_EchoInterface) as ch:
            with pytest.raises(RemoteError, match="kapow"):
                ch.call("boom")
            # channel still usable after a remote error
            assert ch.call("echo", 1) == 1

    def test_pipelined_async_calls(self):
        with SocketChannel(_EchoInterface) as ch:
            reqs = [ch.async_call("add", i, b=i) for i in range(20)]
            assert wait_all(reqs) == [2 * i for i in range(20)]

    def test_byte_accounting(self):
        with SocketChannel(_EchoInterface) as ch:
            before = ch.bytes_sent
            ch.call("echo", "x" * 1000)
            assert ch.bytes_sent - before > 1000

    def test_unknown_method_is_remote_error(self):
        with SocketChannel(_EchoInterface) as ch:
            with pytest.raises(RemoteError):
                ch.call("no_such_method")


class TestFactory:
    def test_named_channels(self):
        for name, cls in (
            ("direct", DirectChannel),
            ("mpi", DirectChannel),
            ("sockets", SocketChannel),
        ):
            ch = new_channel(name, _EchoInterface)
            assert isinstance(ch, cls)
            ch.stop()

    def test_unknown_channel_name(self):
        with pytest.raises(ValueError, match="unknown channel"):
            new_channel("carrier-pigeon", _EchoInterface)
