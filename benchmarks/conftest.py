"""Benchmark fixtures (report printing)."""

import pytest


@pytest.fixture
def report(capsys):
    """Print a report block that survives pytest's capture."""

    def _report(title, lines):
        with capsys.disabled():
            print(f"\n--- {title} ---")
            for line in lines:
                print(f"    {line}")

    return _report


def pytest_collection_modifyitems(config, items):
    """Under --benchmark-only, keep the shape-assertion tests alive.

    pytest-benchmark skips any test that does not request its fixture;
    every test in this harness IS part of an experiment's reproduction,
    so inject the fixture name instead of losing the assertions.
    """
    try:
        benchmark_only = config.getoption("--benchmark-only")
    except ValueError:
        return
    if not benchmark_only:
        return
    for item in items:
        names = getattr(item, "fixturenames", None)
        if names is not None and "benchmark" not in names:
            names.append("benchmark")
