"""A2 — SmartSockets strategy ablation: direct vs reverse vs routed.

Sec. 3 describes the three connection strategies.  This bench measures
(on the modeled SC11 network) what each costs in setup time and
steady-state transfer time — the price of connectivity behind firewalls
and NATs, and why hubs live on well-connected front-ends.
"""

import pytest

from repro.ibis.smartsockets import VirtualSocketFactory
from repro.jungle import make_sc11_jungle


@pytest.fixture(scope="module")
def setup():
    jungle = make_sc11_jungle()
    factory = VirtualSocketFactory(jungle)
    for site in jungle.sites.values():
        factory.overlay.add_hub(site.frontend)
    cases = {
        # direct: open frontend -> open frontend
        "direct": (
            jungle.host("DAS-4 (VU)-frontend"),
            jungle.host("DAS-4 (UvA)-frontend"),
        ),
        # reverse: open frontend -> firewalled LGM node
        "reverse": (
            jungle.host("DAS-4 (VU)-frontend"),
            jungle.host("LGM (LU)-node00"),
        ),
        # routed: firewalled laptop -> isolated compute node
        "routed": (
            jungle.host("laptop"),
            jungle.host("DAS-4 (VU)-node00"),
        ),
    }
    return jungle, factory, cases


MESSAGE_BYTES = 1_000_000


def test_a2_strategies_selected_as_expected(setup, report):
    jungle, factory, cases = setup
    lines = []
    for expected, (src, dst) in cases.items():
        server = factory.create_server_socket(dst)
        conn = factory.connect_untimed(src, server.address)
        lines.append(
            f"{src.name} -> {dst.name}: {conn.strategy} "
            f"(setup {conn.setup_time_s * 1e3:.1f} ms, "
            f"{conn.hops} hop(s))"
        )
        assert conn.strategy == expected, (
            f"{src.name}->{dst.name} expected {expected}"
        )
    report("A2: strategy selection on the SC11 network", lines)


def test_a2_cost_ordering(setup, report, benchmark):
    """Setup: direct < reverse < routed; transfer: routed pays the
    relay hops, reverse pays nothing once established."""
    jungle, factory, cases = setup
    metrics = {}
    for name, (src, dst) in cases.items():
        server = factory.create_server_socket(dst)
        conn = factory.connect_untimed(src, server.address)
        metrics[name] = (
            conn.setup_time_s,
            conn.transfer_time(MESSAGE_BYTES),
        )
    benchmark.pedantic(
        lambda: factory.plan(
            cases["routed"][0],
            factory.create_server_socket(cases["routed"][1]).address,
        ),
        rounds=20, iterations=1,
    )
    report(
        "A2: strategy costs (1 MB message)",
        [f"{name:<8} setup={metrics[name][0] * 1e3:7.2f} ms  "
         f"transfer={metrics[name][1] * 1e3:7.2f} ms"
         for name in ("direct", "reverse", "routed")],
    )
    assert metrics["direct"][0] <= metrics["reverse"][0]
    assert metrics["reverse"][0] <= metrics["routed"][0] * 1.5
    # routed transfer pays every relay hop
    assert metrics["routed"][1] >= metrics["direct"][1]


def test_a2_hub_placement_matters(setup):
    """Without hubs, blocked endpoints are simply unreachable."""
    from repro.ibis.smartsockets import NoRouteError

    jungle = make_sc11_jungle()
    bare = VirtualSocketFactory(jungle)      # no hubs
    server = bare.create_server_socket(
        jungle.host("DAS-4 (VU)-node00")
    )
    with pytest.raises(NoRouteError):
        bare.connect_untimed(jungle.host("laptop"), server.address)
