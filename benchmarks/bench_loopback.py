"""E2 — the coupler <-> daemon loopback link (paper Sec. 5).

"Benchmarks show that this connection is over 8Gbit/second even on a
modest laptop, has a[n] extremely small latency, and we expect very
little performance issues rising from this extra step in
communication."

These are REAL measurements: frames through a genuine TCP loopback
socket into the daemon and back.  Absolute numbers depend on the host
this runs on; the assertions check the paper's qualitative claims
(multi-Gbit/s throughput, sub-millisecond latency, overhead small
relative to a model call).

Wire protocol v2 moves NumPy payloads as out-of-band buffers
(scatter-gather send, ``recv_into`` receive), so the large-array echo
is the headline number.  Set ``BENCH_QUICK=1`` for the CI smoke run
(fewer rounds, same assertions).
"""

import os
import time

import numpy as np
import pytest

from repro.codes.phigrape import PhiGRAPEInterface
from repro.distributed import DistributedChannel, IbisDaemon

PAYLOAD_BYTES = 4 * 1024 * 1024
QUICK = bool(os.environ.get("BENCH_QUICK"))
ROUNDS = 3 if QUICK else 10
LATENCY_ROUNDS = 50 if QUICK else 200


@pytest.fixture(scope="module")
def channel():
    daemon = IbisDaemon()
    daemon.start()
    ch = DistributedChannel(
        PhiGRAPEInterface, daemon=daemon, resource="local"
    )
    yield ch
    ch.stop()
    daemon.shutdown()


def test_e2_throughput(channel, report, benchmark):
    payload = b"\x00" * PAYLOAD_BYTES

    result = benchmark.pedantic(
        channel.echo, args=(payload,), rounds=ROUNDS, iterations=1,
        warmup_rounds=2,
    )
    assert result == payload
    seconds = benchmark.stats.stats.median
    # one round trip moves the payload twice through the loopback
    gbit_per_s = 2 * PAYLOAD_BYTES * 8 / seconds / 1e9
    report(
        "E2: daemon loopback throughput (paper: >8 Gbit/s)",
        [f"measured {gbit_per_s:.2f} Gbit/s "
         f"({PAYLOAD_BYTES // 2 ** 20} MiB echo, median of {ROUNDS})"],
    )
    assert gbit_per_s > 1.0, "loopback far below the paper's class"


def test_e2_large_array_throughput(channel, report, benchmark):
    """The zero-copy path: a float64 array crosses as one out-of-band
    buffer per direction (protocol v2)."""
    payload = np.zeros(PAYLOAD_BYTES // 8, dtype=np.float64)

    result = benchmark.pedantic(
        channel.echo, args=(payload,), rounds=ROUNDS, iterations=1,
        warmup_rounds=2,
    )
    assert np.array_equal(result, payload)
    seconds = benchmark.stats.stats.median
    gbit_per_s = 2 * payload.nbytes * 8 / seconds / 1e9
    report(
        "E2: daemon loopback large-array throughput (wire v2)",
        [f"measured {gbit_per_s:.2f} Gbit/s "
         f"({payload.nbytes // 2 ** 20} MiB float64 echo, "
         f"median of {ROUNDS}, wire v{channel.wire_version})"],
    )
    assert channel.wire_version >= 2
    assert gbit_per_s > 1.0, "loopback far below the paper's class"


def test_e2_latency(channel, report, benchmark):
    benchmark.pedantic(
        channel.echo, args=(b"x",), rounds=LATENCY_ROUNDS, iterations=1,
        warmup_rounds=20,
    )
    rtt = benchmark.stats.stats.median
    report(
        "E2: daemon loopback round-trip latency",
        [f"measured {rtt * 1e6:.1f} us (paper: 'extremely small')"],
    )
    assert rtt < 5e-3


def test_e2_batched_calls_beat_sequential(channel, report):
    """Request pipelining: one multi-call frame per sync beats one
    frame per attribute (the coupler's per-sync exchange pattern)."""
    n_calls = 6
    rounds = 20 if QUICK else 100

    def sequential():
        for _ in range(n_calls):
            channel.call("get_model_time")

    def batched():
        with channel.batch():
            reqs = [
                channel.async_call("get_model_time")
                for _ in range(n_calls)
            ]
        for req in reqs:
            req.result()

    for fn in (sequential, batched):  # warmup
        fn()
    t0 = time.perf_counter()
    for _ in range(rounds):
        sequential()
    seq = (time.perf_counter() - t0) / rounds
    t0 = time.perf_counter()
    for _ in range(rounds):
        batched()
    bat = (time.perf_counter() - t0) / rounds
    report(
        "E2: batched vs sequential sync (6 attribute calls)",
        [f"sequential {seq * 1e6:8.1f} us",
         f"batched    {bat * 1e6:8.1f} us "
         f"({seq / bat:.1f}x fewer round trips)"],
    )
    assert bat < seq


def test_e2_overhead_vs_model_call(channel, report):
    """The daemon hop must be negligible next to real model work —
    the paper's argument for the extra communication step."""
    n = 400
    rng = np.random.default_rng(0)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    channel.call(
        "new_particle", np.full(n, 1.0 / n),
        pos[:, 0], pos[:, 1], pos[:, 2],
        vel[:, 0], vel[:, 1], vel[:, 2],
    )
    channel.call("ensure_state", "RUN")

    t0 = time.perf_counter()
    channel.call("evolve_model", 0.01)
    model_call = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(10):
        channel.echo(b"x")
    hop = (time.perf_counter() - t0) / 10

    report(
        "E2: daemon hop vs model call",
        [f"hop {hop * 1e3:.3f} ms vs evolve {model_call * 1e3:.1f} ms "
         f"({hop / model_call:.1%} overhead)"],
    )
    assert hop < model_call / 10
