#!/usr/bin/env python3
"""Ensemble campaign benchmark: cache-hit resubmission + crash isolation.

Two acceptance gates for the ``repro.ensemble`` subsystem (also run by
the ``ensemble`` CI lane and folded into the BENCH trajectory):

1. **Cache payoff** — a 24-member sweep fanned across 2 daemon
   sessions with subprocess pilots, run cold and then resubmitted
   byte-identically.  The resubmission is served from the
   content-addressed :class:`~repro.ensemble.cache.ResultCache` and
   must be **>= 10x faster** than the cold campaign
   (``warm <= 0.1x cold``).
2. **Crash isolation** — the same campaign shape with one member whose
   subprocess worker SIGKILLs itself mid-evolve.  The campaign must
   finish with **exactly that member failed** and every other member
   completed (FaultPolicy.RESTART retries it on a fresh pilot first;
   it dies deterministically every attempt).

Usage::

    python benchmarks/bench_ensemble.py            # measure + gate
    BENCH_QUICK=1 python benchmarks/bench_ensemble.py
"""

import os
import shutil
import sys
import tempfile

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.distributed import IbisDaemon, connect   # noqa: E402
from repro.ensemble import (                        # noqa: E402
    CampaignRunner,
    CampaignSpec,
    Member,
    ResultCache,
)

QUICK = bool(os.environ.get("BENCH_QUICK"))
#: the acceptance bound: cached resubmission <= 0.1x the cold campaign
CACHE_GATE_RATIO = 0.1
MEMBERS = 8 if QUICK else 24
SESSIONS = 2
MAX_INFLIGHT = 4


def _sweep(n_members=MEMBERS):
    """The bench campaign: a seed sweep of the drift workload with a
    pinned per-step cost, so the cold wall clock has a known floor."""
    return CampaignSpec.sweep(
        "bench-ensemble", "drift", seeds=range(n_members),
        base={"cost_s": 0.02 if QUICK else 0.05, "n_steps": 2},
    )


def _run_campaign(spec, daemon, cache, resume=True):
    sessions = [
        connect(daemon, name=f"bench-ensemble-{i}")
        for i in range(SESSIONS)
    ]
    try:
        runner = CampaignRunner(
            spec, sessions=sessions, cache=cache,
            worker_mode="subprocess", max_inflight=MAX_INFLIGHT,
        )
        return runner.run(timeout=600)
    finally:
        for session in sessions:
            session.close()


def measure_cold_vs_cached(n_members=MEMBERS):
    """``(cold_s, warm_s)``: the same campaign run twice against one
    cache — first cold (every member spawns subprocess pilots and
    integrates), then byte-identically resubmitted (every member a
    cache hit)."""
    spec = _sweep(n_members)
    cache_dir = tempfile.mkdtemp(prefix="bench-ensemble-cache-")
    try:
        cache = ResultCache(cache_dir)
        with IbisDaemon() as daemon:
            cold = _run_campaign(spec, daemon, cache)
            assert cold.completed == n_members, cold.summary_line()
            warm = _run_campaign(spec, daemon, cache)
            assert warm.cached == n_members, warm.summary_line()
        return cold.wall_s, warm.wall_s
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_crash_isolation(n_members=MEMBERS):
    """Campaign with one self-SIGKILLing member; returns the report."""
    members = [
        Member("sleep", seed, {"cost_s": 0.02 if QUICK else 0.05})
        for seed in range(n_members - 1)
    ]
    members.insert(n_members // 2, Member("crash", 0, {"cost_s": 0.4}))
    spec = CampaignSpec("bench-ensemble-crash", members)
    with IbisDaemon() as daemon:
        return _run_campaign(spec, daemon, cache=None)


@pytest.mark.network
def test_cache_hit_resubmission_is_10x_faster():
    """Acceptance: identical resubmission >= 10x faster via cache."""
    cold_s, warm_s = measure_cold_vs_cached()
    assert warm_s <= CACHE_GATE_RATIO * cold_s, (
        f"cache hits did not pay off: warm {warm_s:.3f}s vs cold "
        f"{cold_s:.3f}s (ratio {warm_s / cold_s:.3f} > "
        f"{CACHE_GATE_RATIO})"
    )


@pytest.mark.network
def test_sigkilled_worker_loses_only_its_member():
    """Acceptance: a mid-campaign worker SIGKILL fails exactly one
    member; every other member completes."""
    report = run_crash_isolation()
    assert report.failed == 1, report.summary_line()
    assert report.completed == MEMBERS - 1, report.summary_line()
    (failure,) = report.failures()
    assert failure.member.workload == "crash"
    assert failure.restarts >= 1   # it WAS retried on a fresh pilot


def main():
    cold_s, warm_s = measure_cold_vs_cached()
    ratio = warm_s / cold_s
    print(f"campaign resubmission ({MEMBERS} members, "
          f"{SESSIONS} sessions, subprocess pilots):")
    print(f"  cold campaign     {cold_s:8.3f} s")
    print(f"  cached resubmit   {warm_s:8.3f} s")
    print(f"  warm/cold ratio   {ratio:8.4f}x  (gate: <= "
          f"{CACHE_GATE_RATIO}x)")
    status = 0
    if ratio > CACHE_GATE_RATIO:
        print("FAIL: cache-hit resubmission is not >= 10x faster")
        status = 1

    report = run_crash_isolation()
    print(f"crash isolation: {report.summary_line()}")
    if report.failed != 1 or report.completed != MEMBERS - 1:
        print("FAIL: SIGKILLed worker did not lose exactly one member")
        status = 1
    else:
        (failure,) = report.failures()
        print(f"  lost member: {failure.member.label()} after "
              f"{failure.restarts} fresh-pilot retr"
              f"{'y' if failure.restarts == 1 else 'ies'}")
    if status == 0:
        print("ok")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
