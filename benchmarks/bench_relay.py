"""Relay data-plane bench: daemon-relayed vs direct-socket throughput.

ROADMAP item 1's acceptance bound: with the zero-decode splice
(:func:`repro.rpc.protocol.relay_frame`) the daemon hop must cost no
more than 10% of direct-socket bulk-echo throughput — the gateway as a
pure store-and-forward station, its overhead a bounded, measured ratio
(the Jungle Computing premise that the overlay stays off the critical
path).  The old decoded dispatcher is measured alongside for the
before/after story, and the micro-batching section quantifies what the
Nagle-style send path saves on chatty call streams.

Gate (enforced here and as ``daemon_relay_vs_direct_ratio`` in
``BENCH_<n>.json`` / the ``daemon-relay`` CI lane)::

    relayed echo throughput >= 0.9x direct SocketChannel

Run: ``python -m pytest benchmarks/bench_relay.py -v``
"""

import os
import time

import numpy as np
import pytest

from bench_channels import echo_throughput_gbit_s
from repro.codes.testing import ArrayEchoInterface
from repro.distributed import IbisDaemon, connect
from repro.rpc import new_channel

QUICK = bool(os.environ.get("BENCH_QUICK"))
ECHO_ROUNDS = 5 if QUICK else 15
ECHO_WORDS = 1 << 20 if QUICK else 1 << 21
#: the hard acceptance bound on relayed/direct throughput
RELAY_GATE_RATIO = 0.9


def measure_relay_vs_direct(payload=None, rounds=ECHO_ROUNDS):
    """Bulk-echo Gbit/s for (direct sockets, relayed, decoded daemon).

    One daemon, one host: the three numbers differ only in what sits
    between the coupler and the pilot, so their ratios gate cleanly
    across CI runner generations.
    """
    if payload is None:
        payload = np.arange(ECHO_WORDS, dtype=np.float64)
    direct = new_channel("sockets", ArrayEchoInterface)
    try:
        direct_gbit = echo_throughput_gbit_s(direct, payload, rounds)
    finally:
        direct.stop()
    with IbisDaemon() as daemon:
        with connect(daemon, relay=True) as session:
            relayed = session.code(
                ArrayEchoInterface, channel_type="subprocess"
            )
            assert relayed.relayed
            try:
                relay_gbit = echo_throughput_gbit_s(
                    relayed, payload, rounds
                )
            finally:
                relayed.stop()
        with connect(daemon) as session:
            decoded = session.code(
                ArrayEchoInterface, channel_type="subprocess"
            )
            assert not decoded.relayed
            try:
                decoded_gbit = echo_throughput_gbit_s(
                    decoded, payload, rounds
                )
            finally:
                decoded.stop()
    return direct_gbit, relay_gbit, decoded_gbit


def measure_autobatch_speedup(calls=64, rounds=None):
    """Wall time for *calls* pipelined async calls: one-frame-each vs
    micro-batched; returns (plain_s, batched_s) medians."""
    if rounds is None:
        rounds = 10 if QUICK else 30
    results = {}
    for label, kwargs in (
        ("plain", {}),
        ("batched", {"autobatch": 0.0005}),
    ):
        channel = new_channel("sockets", ArrayEchoInterface, **kwargs)
        try:
            channel.call("scale", 1.0, 1.0)     # warmup
            samples = []
            for _ in range(rounds):
                t0 = time.perf_counter()
                futures = [
                    channel.async_call("scale", float(i), 2.0)
                    for i in range(calls)
                ]
                for future in futures:
                    future.result(timeout=30)
                samples.append(time.perf_counter() - t0)
            samples.sort()
            results[label] = samples[len(samples) // 2]
        finally:
            channel.stop()
    return results["plain"], results["batched"]


def test_relay_throughput_gate(report):
    """THE acceptance check: relayed >= 0.9x direct-socket throughput
    on the bulk echo (and the splice must beat the decoded path)."""
    payload = np.arange(ECHO_WORDS, dtype=np.float64)
    direct_gbit, relay_gbit, decoded_gbit = \
        measure_relay_vs_direct(payload)
    ratio = relay_gbit / direct_gbit
    report(
        "relay: daemon data-plane vs direct socket "
        f"({payload.nbytes >> 20} MiB float64 echo)",
        [f"direct sockets       {direct_gbit:7.1f} Gbit/s",
         f"relayed (splice)     {relay_gbit:7.1f} Gbit/s "
         f"({ratio:.2f}x; acceptance: >= {RELAY_GATE_RATIO}x)",
         f"decoded dispatcher   {decoded_gbit:7.1f} Gbit/s "
         f"({decoded_gbit / direct_gbit:.2f}x)"],
    )
    assert ratio >= RELAY_GATE_RATIO, (
        f"daemon relay costs too much: {relay_gbit:.1f} vs "
        f"{direct_gbit:.1f} Gbit/s direct ({ratio:.2f}x < "
        f"{RELAY_GATE_RATIO}x)"
    )


def test_relay_end_to_end_shm_beats_socket_splice(report):
    """Same-host shm pilot through the relay: arenas negotiated end to
    end, so large arrays never cross the wire at all — the splice only
    carries descriptor frames."""
    payload = np.arange(ECHO_WORDS, dtype=np.float64)
    with IbisDaemon() as daemon, connect(daemon, relay=True) as session:
        plain = session.code(ArrayEchoInterface,
                             channel_type="subprocess")
        shm = session.code(ArrayEchoInterface, channel_type="shm")
        try:
            assert shm.transport_stats["shm"] is True
            plain_gbit = echo_throughput_gbit_s(
                plain, payload, ECHO_ROUNDS
            )
            shm_gbit = echo_throughput_gbit_s(shm, payload, ECHO_ROUNDS)
            stats = shm.transport_stats
        finally:
            plain.stop()
            shm.stop()
    report(
        "relay: end-to-end shm vs socket splice "
        f"({payload.nbytes >> 20} MiB float64 echo)",
        [f"relay (socket splice) {plain_gbit:7.1f} Gbit/s",
         f"relay (e2e shm)       {shm_gbit:7.1f} Gbit/s "
         f"({shm_gbit / plain_gbit:.2f}x)",
         f"bytes through shared memory: "
         f"{stats['shm_buffer_bytes'] >> 20} MiB"],
    )
    assert stats["shm_buffer_bytes"] > 0
    assert shm_gbit > plain_gbit


def test_autobatch_amortizes_chatty_streams(report):
    """Micro-batching must not lose on a pipelined small-call stream
    (it wins on per-frame overhead; the adaptive window keeps it from
    adding latency when traffic is sparse)."""
    plain_s, batched_s = measure_autobatch_speedup()
    speedup = plain_s / batched_s
    report(
        "relay: adaptive micro-batching on 64 pipelined small calls",
        [f"one frame per call   {plain_s * 1e3:7.2f} ms",
         f"micro-batched        {batched_s * 1e3:7.2f} ms "
         f"({speedup:.2f}x)"],
    )
    # batching must never cost more than noise on a pipelined stream
    assert batched_s < plain_s * 1.25


@pytest.mark.parametrize("mode", ["thread", "subprocess", "shm"])
def test_relay_modes_round_trip(mode, benchmark):
    """Every pilot mode answers through the splice (smoke + latency)."""
    with IbisDaemon() as daemon, connect(daemon, relay=True) as session:
        channel = session.code(ArrayEchoInterface, channel_type=mode)
        try:
            assert channel.relayed
            benchmark.pedantic(
                channel.call, args=("scale", 2.0, 3.0),
                rounds=10 if QUICK else 50, iterations=1,
                warmup_rounds=5,
            )
        finally:
            channel.stop()
