"""A3 — the central coupler as bottleneck (Secs. 4.1 and 7).

"All communication required between different models is done through
the AMUSE coupler ...  However, it also introduces a potential
bottleneck when large-scale simulations are done.  We regard creating a
distributed version of the coupler, or adding direct communication
between models as future work."

This ablation quantifies, on the jungle placement, the two planned
improvements: overlapping the model drifts (async bridge) and letting
the coupling model talk to gravity/hydro directly.
"""

import pytest

from repro.jungle import IterationWorkload

from scenario_helpers import build_scenario


@pytest.fixture(scope="module")
def variants():
    out = {}
    for scale in (1, 10):
        w = IterationWorkload(n_stars=1000 * scale,
                              n_gas=10000 * scale)
        model, _, placement = build_scenario("jungle", w)
        out[scale] = {
            "prototype": model.iteration_time(w, placement),
            "async-drift": model.iteration_time(
                w, placement, overlap_drift=True
            ),
            "direct-comm": model.iteration_time(
                w, placement, direct_model_comm=True
            ),
            "both": model.iteration_time(
                w, placement, overlap_drift=True,
                direct_model_comm=True,
            ),
        }
    return out


def test_a3_report(variants, report, benchmark):
    model, w, placement = build_scenario("jungle")
    benchmark.pedantic(
        model.iteration_time, args=(w, placement),
        kwargs={"overlap_drift": True}, rounds=5, iterations=1,
    )
    for scale, table in variants.items():
        report(
            f"A3: coupler bottleneck (scale x{scale})",
            [f"{name:<12} {res['total_s']:9.1f} s/iter"
             for name, res in table.items()],
        )


def test_a3_async_drift_helps(variants):
    for table in variants.values():
        assert table["async-drift"]["total_s"] < \
            table["prototype"]["total_s"]


def test_a3_direct_comm_reduces_coupling_comm(variants):
    for table in variants.values():
        proto = table["prototype"]["breakdown"]["coupling"]["comm_s"]
        direct = table["direct-comm"]["breakdown"]["coupling"]["comm_s"]
        assert direct <= proto


def test_a3_combined_best(variants):
    for table in variants.values():
        best = min(res["total_s"] for res in table.values())
        assert table["both"]["total_s"] == pytest.approx(best)


def test_a3_bottleneck_grows_with_scale(variants, report):
    """The bigger the simulation, the more the central coupler costs —
    exactly why the paper flags it for future work."""
    gain_small = (
        variants[1]["prototype"]["total_s"]
        - variants[1]["both"]["total_s"]
    )
    gain_large = (
        variants[10]["prototype"]["total_s"]
        - variants[10]["both"]["total_s"]
    )
    report(
        "A3: absolute gain from decentralising",
        [f"scale x1:  {gain_small:7.1f} s/iter",
         f"scale x10: {gain_large:7.1f} s/iter"],
    )
    assert gain_large > gain_small
