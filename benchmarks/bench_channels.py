"""A1 — channel ablation: direct (MPI-local) vs sockets vs ibis.

AMUSE supports interchangeable worker channels (paper Sec. 4.1).  This
bench measures REAL call latency and bulk-transfer throughput through
each, quantifying what the extra daemon hop of the ibis channel costs —
the paper's claim is that it is small enough for remote GPUs to win.
"""

import os

import numpy as np
import pytest

from repro.codes.phigrape import PhiGRAPEInterface
from repro.distributed import DistributedChannel, IbisDaemon
from repro.rpc import new_channel

QUICK = bool(os.environ.get("BENCH_QUICK"))
LATENCY_ROUNDS = 25 if QUICK else 100
BULK_ROUNDS = 2 if QUICK else 5
OVERHEAD_ROUNDS = 50 if QUICK else 200


@pytest.fixture(scope="module")
def channels():
    daemon = IbisDaemon()
    daemon.start()
    chans = {
        "direct": new_channel("direct", PhiGRAPEInterface),
        "sockets": new_channel("sockets", PhiGRAPEInterface),
        "ibis": DistributedChannel(
            PhiGRAPEInterface, daemon=daemon, resource="local"
        ),
    }
    yield chans
    for ch in chans.values():
        ch.stop()
    daemon.shutdown()


@pytest.mark.parametrize("kind", ["direct", "sockets", "ibis"])
def test_a1_call_latency(channels, kind, benchmark):
    ch = channels[kind]
    benchmark.pedantic(
        ch.call, args=("get_model_time",),
        rounds=LATENCY_ROUNDS, iterations=1, warmup_rounds=10,
    )
    assert benchmark.stats.stats.median < 5e-3


@pytest.mark.parametrize("kind", ["direct", "sockets", "ibis"])
def test_a1_bulk_add_particles(channels, kind, benchmark):
    n = 5000
    rng = np.random.default_rng(1)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = np.full(n, 1.0 / n)
    ch = channels[kind]
    benchmark.pedantic(
        ch.call,
        args=("new_particle", mass, pos[:, 0], pos[:, 1], pos[:, 2],
              vel[:, 0], vel[:, 1], vel[:, 2]),
        rounds=BULK_ROUNDS, iterations=1,
    )
    assert benchmark.stats.stats.median < 1.0


def test_a1_channel_overhead_ordering(channels, report):
    """direct < sockets <= ibis in per-call overhead; all results
    identical (the channel must not change physics)."""
    import time

    medians = {}
    for kind, ch in channels.items():
        times = []
        for _ in range(OVERHEAD_ROUNDS):
            t0 = time.perf_counter()
            ch.call("get_model_time")
            times.append(time.perf_counter() - t0)
        medians[kind] = sorted(times)[len(times) // 2]
    report(
        "A1: per-call channel overhead",
        [f"{kind:<8} {median * 1e6:8.1f} us"
         for kind, median in medians.items()],
    )
    assert medians["direct"] < medians["sockets"]
    assert medians["direct"] < medians["ibis"]
