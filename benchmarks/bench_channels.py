"""A1 — channel ablation: direct (MPI-local) vs sockets vs shm vs ibis.

AMUSE supports interchangeable worker channels (paper Sec. 4.1).  This
bench measures REAL call latency and bulk-transfer throughput through
each, quantifying what the extra daemon hop of the ibis channel costs —
the paper's claim is that it is small enough for remote GPUs to win.

The shm comparison is the tentpole acceptance check of the
shared-memory transport: on large float64 arrays the shm channel must
deliver at least 2x the sockets-loopback throughput (the payload never
touches the socket).  The compression profile test pins the
negotiation economics: same-host channels stay uncompressed, the
WAN-profile ibis channel negotiates a codec and shrinks compressible
transfers on the wire.
"""

import os
import time

import numpy as np
import pytest

from repro.codes.phigrape import PhiGRAPEInterface
from repro.codes.testing import ArrayEchoInterface
from repro.distributed import DistributedChannel, IbisDaemon
from repro.rpc import new_channel

QUICK = bool(os.environ.get("BENCH_QUICK"))
LATENCY_ROUNDS = 25 if QUICK else 100
BULK_ROUNDS = 2 if QUICK else 5
OVERHEAD_ROUNDS = 50 if QUICK else 200
ECHO_ROUNDS = 5 if QUICK else 15
#: large-array payload for the shm-vs-sockets comparison (float64)
ECHO_WORDS = 1 << 20 if QUICK else 1 << 21


@pytest.fixture(scope="module")
def channels():
    daemon = IbisDaemon()
    daemon.start()
    chans = {
        "direct": new_channel("direct", PhiGRAPEInterface),
        "sockets": new_channel("sockets", PhiGRAPEInterface),
        "shm": new_channel("shm", PhiGRAPEInterface),
        "ibis": DistributedChannel(
            PhiGRAPEInterface, daemon=daemon, resource="local"
        ),
    }
    yield chans
    for ch in chans.values():
        ch.stop()
    daemon.shutdown()


def echo_throughput_gbit_s(channel, payload, rounds=ECHO_ROUNDS):
    """Median two-way echo throughput for *payload* in Gbit/s."""
    channel.call("echo", payload)      # warmup
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        channel.call("echo", payload)
        samples.append(time.perf_counter() - t0)
    samples.sort()
    median = samples[len(samples) // 2]
    return 2 * payload.nbytes * 8 / median / 1e9


@pytest.mark.parametrize("kind", ["direct", "sockets", "shm", "ibis"])
def test_a1_call_latency(channels, kind, benchmark):
    ch = channels[kind]
    benchmark.pedantic(
        ch.call, args=("get_model_time",),
        rounds=LATENCY_ROUNDS, iterations=1, warmup_rounds=10,
    )
    assert benchmark.stats.stats.median < 5e-3


@pytest.mark.parametrize("kind", ["direct", "sockets", "shm", "ibis"])
def test_a1_bulk_add_particles(channels, kind, benchmark):
    n = 5000
    rng = np.random.default_rng(1)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = np.full(n, 1.0 / n)
    ch = channels[kind]
    benchmark.pedantic(
        ch.call,
        args=("new_particle", mass, pos[:, 0], pos[:, 1], pos[:, 2],
              vel[:, 0], vel[:, 1], vel[:, 2]),
        rounds=BULK_ROUNDS, iterations=1,
    )
    assert benchmark.stats.stats.median < 1.0


def test_a1_shm_beats_sockets_on_large_arrays(report, benchmark):
    """The shm acceptance check: >= 2x sockets-loopback throughput on
    large float64 arrays (zero wire copies vs two kernel traversals)."""
    payload = np.arange(ECHO_WORDS, dtype=np.float64)
    sockets = new_channel("sockets", ArrayEchoInterface)
    shm = new_channel("shm", ArrayEchoInterface)
    try:
        sockets_gbit = echo_throughput_gbit_s(sockets, payload)
        shm_gbit = echo_throughput_gbit_s(shm, payload)
        stats = shm.transport_stats
        benchmark.pedantic(
            shm.call, args=("echo", payload), rounds=ECHO_ROUNDS,
            iterations=1, warmup_rounds=1,
        )
        benchmark.extra_info["sockets_gbit_s"] = sockets_gbit
        benchmark.extra_info["shm_gbit_s"] = shm_gbit
        benchmark.extra_info["ratio"] = shm_gbit / sockets_gbit
    finally:
        sockets.stop()
        shm.stop()
    report(
        "A1: shm vs sockets large-array echo "
        f"({payload.nbytes >> 20} MiB float64)",
        [f"sockets  {sockets_gbit:7.1f} Gbit/s",
         f"shm      {shm_gbit:7.1f} Gbit/s "
         f"({shm_gbit / sockets_gbit:.2f}x; acceptance: >= 2x)",
         f"bytes through shared memory: "
         f"{stats['shm_buffer_bytes'] >> 20} MiB "
         f"(inline wire bytes: {stats['wire_buffer_bytes']})"],
    )
    assert stats["shm_buffer_bytes"] > 0
    assert shm_gbit >= 2.0 * sockets_gbit


def test_a1_shm_subprocess_variant(report):
    """The off-process shm worker keeps the zero-wire-copy win (same
    segments, attached by name from the spawned child)."""
    payload = np.arange(ECHO_WORDS, dtype=np.float64)
    subproc = new_channel("subprocess", ArrayEchoInterface)
    shm_subproc = new_channel(
        "shm", ArrayEchoInterface, worker_mode="subprocess"
    )
    try:
        socket_gbit = echo_throughput_gbit_s(subproc, payload)
        shm_gbit = echo_throughput_gbit_s(shm_subproc, payload)
    finally:
        subproc.stop()
        shm_subproc.stop()
    report(
        "A1: shm subprocess worker vs socket subprocess worker",
        [f"subprocess (socket) {socket_gbit:7.1f} Gbit/s",
         f"subprocess (shm)    {shm_gbit:7.1f} Gbit/s "
         f"({shm_gbit / socket_gbit:.2f}x)"],
    )
    assert shm_gbit > socket_gbit


def test_a1_compression_profile(report):
    """Negotiation economics: same-host channels stay uncompressed,
    WAN-profile channels negotiate a codec and shrink the wire."""
    payload = np.zeros(1 << 17, dtype=np.float64)    # compressible MiB
    daemon = IbisDaemon()
    daemon.start()
    sockets = new_channel("sockets", ArrayEchoInterface)
    local = DistributedChannel(
        ArrayEchoInterface, daemon=daemon, resource="local"
    )
    wan = DistributedChannel(
        ArrayEchoInterface, daemon=daemon, resource="DAS-4 (VU)"
    )
    try:
        assert sockets.transport_stats["codec"] is None
        assert local.transport_stats["codec"] is None
        codec = wan.transport_stats["codec"]
        assert codec is not None, \
            "WAN-profile channel negotiated no codec"
        before = wan.bytes_sent
        wan.call("echo", payload)
        wan_wire = wan.bytes_sent - before
        before = local.bytes_sent
        local.call("echo", payload)
        local_wire = local.bytes_sent - before
        ratio = local_wire / wan_wire
    finally:
        sockets.stop()
        local.stop()
        wan.stop()
        daemon.shutdown()
    report(
        "A1: negotiated compression profile "
        f"({payload.nbytes >> 20} MiB compressible float64)",
        ["same-host channels: no codec (loopback beats any codec)",
         f"WAN-profile channel: codec={codec}",
         f"wire bytes  local {local_wire}  wan {wan_wire} "
         f"({ratio:.0f}x smaller)"],
    )
    assert wan_wire < local_wire / 4


def test_a1_channel_overhead_ordering(channels, report):
    """direct < sockets <= ibis in per-call overhead; all results
    identical (the channel must not change physics)."""
    medians = {}
    for kind, ch in channels.items():
        times = []
        for _ in range(OVERHEAD_ROUNDS):
            t0 = time.perf_counter()
            ch.call("get_model_time")
            times.append(time.perf_counter() - t0)
        medians[kind] = sorted(times)[len(times) // 2]
    report(
        "A1: per-call channel overhead",
        [f"{kind:<8} {median * 1e6:8.1f} us"
         for kind, median in medians.items()],
    )
    assert medians["direct"] < medians["sockets"]
    assert medians["direct"] < medians["ibis"]
