"""A5 — CESM node layouts: partitioned vs shared (Sec. 4.2).

"The compute nodes can either be partitioned, each running (part of)
one model, shared, each running (part of) multiple models, or use a
combination of both ...  it may take a user quite a bit of
experimenting to find an efficient configuration."

This bench measures the REAL per-component step cost of CESM-lite, then
evaluates layouts by their critical path (the quantity a real scheduler
optimises; on a single-core CI host thread-parallel wall time would
only measure the GIL).  It also shows the data-model trick: replacing
the ocean by its data twin rebalances the layout.
"""

import time

import pytest

from repro.cesm import EarthSystemModel, Layout, data_twin


def measure_component_costs(esm, repeats=10):
    esm.exchange()
    costs = {}
    for name, component in esm.components.items():
        t0 = time.perf_counter()
        for _ in range(repeats):
            component.step(5.0)
        costs[name] = (time.perf_counter() - t0) / repeats
    return costs


def critical_path(layout, costs):
    """Per-rank cost sums; the slowest rank is the step time."""
    per_rank = {}
    for name, ranks in layout.assignment.items():
        owner = min(ranks)
        per_rank[owner] = per_rank.get(owner, 0.0) + costs[name]
    return max(per_rank.values())


@pytest.fixture(scope="module")
def costs():
    return measure_component_costs(EarthSystemModel())


def test_a5_component_costs(costs, report, benchmark):
    esm = EarthSystemModel()
    esm.exchange()
    benchmark.pedantic(
        esm.atm.step, args=(5.0,), rounds=10, iterations=1
    )
    report(
        "A5: measured per-component step cost",
        [f"{name:<4} {cost * 1e3:7.2f} ms"
         for name, cost in sorted(costs.items())],
    )
    assert all(cost > 0 for cost in costs.values())


def test_a5_partitioned_beats_single_shared(costs, report):
    partitioned = critical_path(Layout.partitioned(), costs)
    shared_one = critical_path(Layout.shared(1), costs)
    report(
        "A5: layout critical paths",
        [f"partitioned (4 ranks): {partitioned * 1e3:7.2f} ms",
         f"shared (1 rank):       {shared_one * 1e3:7.2f} ms",
         f"speed-up: {shared_one / partitioned:.2f}x"],
    )
    assert partitioned < shared_one


def test_a5_balance_matters(costs, report):
    """A deliberately bad partitioning (everything heavy on rank 0) is
    no better than serial — the configuration pain the paper notes."""
    bad = Layout(
        {"atm": (0,), "ocn": (0,), "lnd": (0,), "ice": (0,)}
    )
    good = Layout.partitioned()
    bad_path = critical_path(bad, costs)
    good_path = critical_path(good, costs)
    report(
        "A5: good vs bad layout",
        [f"balanced {good_path * 1e3:7.2f} ms vs "
         f"all-on-rank-0 {bad_path * 1e3:7.2f} ms"],
    )
    assert good_path < bad_path


def test_a5_data_model_rebalances(report):
    """Swapping the active ocean for its data twin removes its cost
    from the layout (CESM's data-model configurations)."""
    active = EarthSystemModel()
    active_costs = measure_component_costs(active)

    replayed = EarthSystemModel()
    replayed.components["ocn"] = data_twin(replayed.ocn)
    data_costs = measure_component_costs(replayed)

    report(
        "A5: active vs data ocean",
        [f"active ocn: {active_costs['ocn'] * 1e3:7.2f} ms",
         f"data ocn:   {data_costs['ocn'] * 1e3:7.2f} ms"],
    )
    assert data_costs["ocn"] < active_costs["ocn"]
