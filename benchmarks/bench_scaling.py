"""E6 — full-run projection and the planned scale-up (Secs. 6.2/7).

The paper: "the total simulation takes about 1200 iterations" and "we
plan to scale up our experiment significantly, with at least a factor
100, in the near future."  This bench projects full-run times for every
Sec. 6.2 scenario and sweeps the problem size to locate where the
jungle placement's advantage grows — the reason jungle computing is
"necessary to make scientific progress".
"""

import pytest

from repro.jungle import IterationWorkload

from scenario_helpers import build_scenario

FULL_RUN_ITERATIONS = 1200
SCENARIOS = ("cpu", "local-gpu", "remote-gpu", "jungle")


def test_e6_full_run_projection(report, benchmark):
    projections = {}
    for name in SCENARIOS:
        model, workload, placement = build_scenario(name)
        per_iter = model.iteration_time(workload, placement)["total_s"]
        projections[name] = per_iter * FULL_RUN_ITERATIONS
    benchmark.pedantic(
        lambda: build_scenario("cpu")[0], rounds=3, iterations=1
    )
    lines = [
        f"{name:<12} {projections[name] / 3600.0:6.1f} h "
        f"({projections[name] / 86400.0:4.1f} days)"
        for name in SCENARIOS
    ]
    report(
        f"E6: projected full run ({FULL_RUN_ITERATIONS} iterations)",
        lines,
    )
    # CPU-only: ~5 days; jungle: <1 day — the paper's practical point
    assert projections["cpu"] / 86400.0 > 3.0
    assert projections["jungle"] / 86400.0 < 1.5


@pytest.mark.parametrize("scale", [1, 4, 10])
def test_e6_jungle_advantage_grows_with_n(scale, report):
    """At x100 problem scale (the paper's plan), single machines
    become hopeless while the jungle keeps the run feasible."""
    workload = IterationWorkload(
        n_stars=1000 * scale, n_gas=10000 * scale
    )
    times = {}
    for name in ("local-gpu", "jungle"):
        model, _, placement = build_scenario(name, workload)
        times[name] = model.iteration_time(workload, placement)[
            "total_s"]
    advantage = times["local-gpu"] / times["jungle"]
    report(
        f"E6: scale x{scale}",
        [f"local-gpu {times['local-gpu']:9.1f} s/iter   "
         f"jungle {times['jungle']:9.1f} s/iter   "
         f"advantage {advantage:.2f}x"],
    )
    assert advantage > 1.0
    if scale >= 10:
        assert advantage > 1.4


def test_e6_kernel_scaling_shapes(report):
    """Per-kernel work scaling: direct N^2 vs tree N log N — why the
    gravity model needs the GRAPE/GPU class machines as N grows."""
    lines = []
    for scale in (1, 10, 100):
        w = IterationWorkload(n_stars=1000 * scale,
                              n_gas=10000 * scale)
        _, direct = w.work_units("gravity")
        _, tree = w.work_units("coupling")
        lines.append(
            f"x{scale:<4} direct={direct:.2e}  tree={tree:.2e}  "
            f"ratio={direct / tree:6.1f}"
        )
    report("E6: kernel work scaling", lines)
    w1 = IterationWorkload(1000, 10000)
    w100 = IterationWorkload(100000, 1000000)
    growth_direct = w100.work_units("gravity")[1] / \
        w1.work_units("gravity")[1]
    growth_tree = w100.work_units("coupling")[1] / \
        w1.work_units("coupling")[1]
    assert growth_direct == pytest.approx(1e4, rel=1e-6)   # N^2
    assert growth_tree < 200.0                             # N log N
