"""E5 — Figs. 10/11: the IbisDeploy monitoring views.

Fig. 10: resource map, job list, overlay network (ssh tunnels / one-way
arrows).  Fig. 11: the 3-D traffic visualization — IPL traffic between
sites, MPI traffic inside them, load bars per machine, and the paper's
observation: "Note that the nodes running models that support GPUs have
a very low load.  As the GPU is used, the CPUs in the machine are
almost completely idle."
"""

import pytest

from repro.distributed import (
    DistributedAmuse,
    JungleRunner,
    ResourceSpec,
)
from repro.jungle import make_sc11_jungle
from repro.viz import render_snapshot


@pytest.fixture(scope="module")
def monitored_run():
    jungle = make_sc11_jungle()
    damuse = DistributedAmuse(jungle, jungle.host("laptop"))
    damuse.add_resource(
        ResourceSpec("LGM", "LGM (LU)", "ssh", 1, needs_gpu=True)
    )
    damuse.add_resource(ResourceSpec("VU", "DAS-4 (VU)", "sge", 8))
    damuse.add_resource(ResourceSpec("UvA", "DAS-4 (UvA)", "sge", 1))
    damuse.add_resource(
        ResourceSpec("TUD", "DAS-4 (TUD)", "sge", 2, needs_gpu=True)
    )
    damuse.new_pilot("gravity", "LGM")
    damuse.new_pilot("hydro", "VU", node_count=8)
    damuse.new_pilot("se", "UvA")
    damuse.new_pilot("coupling", "TUD", node_count=2)
    damuse.wait_for_pilots()
    runner = JungleRunner(None, damuse)
    runner.run(5)
    return jungle, damuse, damuse.monitor().snapshot()


def test_e5_snapshot_complete(monitored_run, report, benchmark):
    jungle, damuse, snapshot = monitored_run
    benchmark.pedantic(
        damuse.monitor().snapshot, rounds=5, iterations=1
    )
    assert snapshot["resources"] and snapshot["jobs"]
    assert snapshot["overlay"]
    report(
        "E5: monitor snapshot",
        render_snapshot(snapshot).splitlines(),
    )


def test_e5_ipl_traffic_between_sites(monitored_run):
    """Fig. 11: IPL (blue) traffic flows coupler <-> model sites."""
    jungle, damuse, snapshot = monitored_run
    ipl = snapshot["traffic_ipl"]
    assert ipl[("Seattle (SC11)", "DAS-4 (VU)")] > 0
    assert ipl[("Seattle (SC11)", "DAS-4 (TUD)")] > 0


def test_e5_mpi_traffic_inside_cluster(monitored_run):
    """Fig. 11: MPI (orange) traffic stays inside Gadget's cluster."""
    jungle, damuse, snapshot = monitored_run
    mpi = snapshot["traffic_mpi"]
    assert mpi[("DAS-4 (VU)", "DAS-4 (VU)")] > 0
    # no wide-area MPI
    assert all(src == dst for src, dst in mpi)


def test_e5_gpu_nodes_idle_cpus(monitored_run, report):
    """The paper's load observation, quantitatively."""
    jungle, damuse, snapshot = monitored_run
    loads = snapshot["loads"]
    gpu_node_cpu = loads["DAS-4 (TUD)-node00"]["cpu"]
    gpu_node_gpu = loads["DAS-4 (TUD)-node00"]["gpu"]
    cpu_node_cpu = loads["DAS-4 (VU)-node00"]["cpu"]
    report(
        "E5: load bars (Fig. 11)",
        [f"GPU node (Octgrav): cpu={gpu_node_cpu:.1%} "
         f"gpu={gpu_node_gpu:.1%}",
         f"CPU node (Gadget):  cpu={cpu_node_cpu:.1%}"],
    )
    assert gpu_node_cpu < 0.05
    assert gpu_node_gpu > 0.05
    assert cpu_node_cpu > gpu_node_cpu


def test_e5_overlay_lists_tunnelled_links(monitored_run):
    jungle, damuse, snapshot = monitored_run
    kinds = {kind for _, _, kind in snapshot["overlay"]}
    assert "one-way" in kinds      # the Fig. 10 arrows
