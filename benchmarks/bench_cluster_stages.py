"""E3 — Fig. 6: the four stages of the embedded-cluster simulation.

The paper's Fig. 6 shows the simulation at four times: (a) stars
embedded in gas, (b) gas expanding, (c) a thin shell remaining, (d) gas
completely removed with a visibly larger cluster.  This bench runs the
REAL coupled simulation (all four models) and asserts that the stage
sequence, the monotonic gas expulsion, the supernova activity and the
final cluster expansion all reproduce.
"""

import pytest

from repro.coupling import EmbeddedClusterSimulation
from repro.viz import StageTracker


@pytest.fixture(scope="module")
def run():
    sim = EmbeddedClusterSimulation(
        n_stars=16, n_gas=128, rng=4, mass_min=5.0, mass_max=30.0,
        bridge_timestep_myr=0.5, se_interval=1,
        star_mass_fraction=0.3, sn_efficiency=2e-4,
        wind_speed_kms=30.0,
    )
    tracker = StageTracker()
    tracker.record(sim.diagnostics())
    for _ in range(22):
        sim.evolve_one_iteration()
        tracker.record(sim.diagnostics())
    yield sim, tracker
    sim.stop()


def test_e3_stage_sequence(run, report, benchmark):
    sim, tracker = run
    benchmark.pedantic(
        sim.diagnostics, rounds=3, iterations=1
    )
    lines = []
    for row in tracker.stage_table():
        lines.append(
            f"{row['stage']:<10} t={row['time_myr']:6.2f} Myr  "
            f"bound={row['bound_gas_fraction']:5.2f}  "
            f"gas r_h={row['gas_half_mass_radius_pc']:5.2f} pc  "
            f"stars r_h={row['star_half_mass_radius_pc']:5.2f} pc"
        )
    report("E3: Fig. 6 stage table", lines)
    stages = tracker.stages_seen
    assert stages[0] == "embedded"
    assert stages == sorted(
        stages, key=["embedded", "expanding", "shell",
                     "expelled"].index
    ), "stages must appear in the Fig. 6 order"
    assert "shell" in stages or "expelled" in stages


def test_e3_gas_monotonically_expelled(run):
    sim, tracker = run
    assert tracker.is_monotonic_expulsion()
    first = tracker.snapshots[0]["bound_gas_fraction"]
    last = tracker.snapshots[-1]["bound_gas_fraction"]
    assert last < first - 0.5, "most of the gas must be expelled"


def test_e3_supernovae_during_run(run, report):
    """Paper Sec. 6: 'several of the bigger stars exploding in a
    supernova during the simulation'."""
    sim, tracker = run
    report(
        "E3: stellar evolution activity",
        [f"supernovae: {sim.n_supernovae}",
         f"stellar mass lost: "
         f"{tracker.snapshots[0]['total_star_mass_msun'] - tracker.snapshots[-1]['total_star_mass_msun']:.1f} MSun"],
    )
    assert sim.n_supernovae >= 1


def test_e3_cluster_expands(run):
    """Fig. 6(d): 'note the larger size of the cluster'."""
    sim, tracker = run
    assert tracker.cluster_expanded()
