#!/usr/bin/env python3
"""Session benchmark: warm-pool vs cold-spawn time-to-first-evolve.

The multi-session daemon keeps a pool of pre-spawned, parked
subprocess workers (``IbisDaemon(warm_pool=N)``).  Claiming one skips
the interpreter start + numpy import that dominate a cold spawn; the
pilot only replays capability negotiation and ships its interface
factory at claim time.  This bench pins the headline number: the
wall-clock from ``session.code(...)`` to the first ``evolve_model``
returning, warm vs cold.

The acceptance gate (also enforced by the ``daemon-sessions`` CI lane
and the BENCH trajectory) is **warm <= 0.5x cold**: if claiming a
parked worker is not at least twice as fast as spawning one, the pool
is dead weight.

Usage::

    python benchmarks/bench_sessions.py            # measure + gate
    BENCH_QUICK=1 python benchmarks/bench_sessions.py
"""

import os
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.codes.testing import SleepCode        # noqa: E402
from repro.distributed import IbisDaemon, connect  # noqa: E402
from repro.units import nbody_system              # noqa: E402

QUICK = bool(os.environ.get("BENCH_QUICK"))
ROUNDS = 2 if QUICK else 3
#: warm pool must deliver first-evolve in at most this fraction of cold
WARM_GATE_RATIO = 0.5


def _median(samples):
    samples = sorted(samples)
    return samples[len(samples) // 2]


def first_evolve_s(daemon):
    """Wall-clock from pilot placement to the first evolve returning.

    One fresh session per sample; the pilot is a zero-cost SleepCode
    so the measurement is pure placement + negotiation + one RPC.
    """
    with connect(daemon) as session:
        t0 = time.perf_counter()
        code = session.code(
            SleepCode, channel_type="subprocess", cost_s=0.0
        )
        code.evolve_model(0.001 | nbody_system.time)
        elapsed = time.perf_counter() - t0
        code.stop()
    return elapsed


def measure_warm_vs_cold(rounds=ROUNDS):
    """Median ``(warm_s, cold_s)`` time-to-first-evolve.

    A fresh daemon per sample keeps the pool state deterministic:
    the warm daemon has exactly one parked worker ready before the
    clock starts, the cold daemon has none.
    """
    warm_samples, cold_samples = [], []
    for _ in range(rounds):
        with IbisDaemon(warm_pool=1) as daemon:
            assert daemon.warm_pool.ready(1, timeout=60)
            warm_samples.append(first_evolve_s(daemon))
        with IbisDaemon() as daemon:
            cold_samples.append(first_evolve_s(daemon))
    return _median(warm_samples), _median(cold_samples)


@pytest.mark.network
def test_warm_pool_halves_time_to_first_evolve():
    """Acceptance: warm claim <= 0.5x a cold spawn, and both agree."""
    warm_s, cold_s = measure_warm_vs_cold()
    assert warm_s <= WARM_GATE_RATIO * cold_s, (
        f"warm pool did not pay off: warm {warm_s * 1e3:.0f} ms vs "
        f"cold {cold_s * 1e3:.0f} ms "
        f"(ratio {warm_s / cold_s:.2f} > {WARM_GATE_RATIO})"
    )


@pytest.mark.network
def test_warm_pool_accounting_is_attributed():
    """The session that claims a warm worker is the one billed for it."""
    with IbisDaemon(warm_pool=1) as daemon:
        assert daemon.warm_pool.ready(1, timeout=60)
        with connect(daemon) as session:
            code = session.code(
                SleepCode, channel_type="subprocess", cost_s=0.0
            )
            code.evolve_model(0.001 | nbody_system.time)
            acct = session.status()["session"]["accounting"]
            assert acct["warm_hits"] == 1
            assert acct["cold_spawns"] == 0
            code.stop()


def main():
    warm_s, cold_s = measure_warm_vs_cold()
    ratio = warm_s / cold_s
    print(f"time-to-first-evolve ({ROUNDS} rounds, median):")
    print(f"  cold spawn        {cold_s * 1e3:8.1f} ms")
    print(f"  warm pool claim   {warm_s * 1e3:8.1f} ms")
    print(f"  warm/cold ratio   {ratio:8.3f}x  (gate: <= "
          f"{WARM_GATE_RATIO}x)")
    if ratio > WARM_GATE_RATIO:
        print("FAIL: warm pool does not halve time-to-first-evolve")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
