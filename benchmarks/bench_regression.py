#!/usr/bin/env python3
"""Benchmark-regression harness: the committed BENCH trajectory.

Three perf-focused PRs (wire v2, async overlap, off-process workers,
now shm + compression) made throughput claims; this script turns them
into a CI gate.  It measures the headline transport metrics, writes
them as ``BENCH_<n>.json`` at the repo root (committed, forming the
trajectory), and in ``--check`` mode fails when a metric regresses
more than the tolerance (default 25%) against the latest committed
baseline.

Two metric classes:

* **gated** — host-independent ratios (shm vs sockets throughput,
  compression wire shrink, batching speedup, async overlap).  These
  compare the same machine against itself within one run, so a CI
  runner's absolute speed cancels out and the 25% gate is meaningful
  across runner generations.
* **informational** — absolute numbers (Gbit/s, latency) recorded for
  trend eyeballing but not gated: comparing a laptop's loopback to a
  CI runner's would gate on hardware, not on code.

When committing a new BENCH_<n>.json from a noisy/single-core host,
re-measure a few times and carry forward the previous baseline's value
for any gated ratio whose local samples scatter across the tolerance
(e.g. shm-vs-sockets on one contended core) — a noise-trough baseline
would fail healthy CI runs, a noise-peak one would hide regressions.

Usage::

    python benchmarks/bench_regression.py --write BENCH_4.json  # baseline
    python benchmarks/bench_regression.py --check               # CI gate
    BENCH_QUICK=1 python benchmarks/bench_regression.py --check --quick
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

# one methodology for echo throughput: the regression gate measures
# exactly what the bench_channels acceptance test asserts
from bench_channels import echo_throughput_gbit_s          # noqa: E402
# for the campaign cache payoff, exactly what the bench_ensemble
# acceptance test asserts
from bench_ensemble import (                               # noqa: E402
    CACHE_GATE_RATIO,
    measure_cold_vs_cached,
)
# for the relay data-plane cost, exactly what the bench_relay
# acceptance test asserts
from bench_relay import (                                  # noqa: E402
    measure_autobatch_speedup,
    measure_relay_vs_direct,
)
# for the warm-pool payoff, exactly what the bench_sessions
# acceptance test asserts
from bench_sessions import measure_warm_vs_cold            # noqa: E402
# and for the DAG-vs-barrier schedule ratio, exactly what the
# bench_taskgraph acceptance test asserts
from bench_taskgraph import measure_taskgraph_vs_barrier   # noqa: E402
from repro.codes.group import EvolveGroup                   # noqa: E402
from repro.codes.testing import (                           # noqa: E402
    ArrayEchoInterface,
    SleepCode,
)
from repro.distributed import IbisDaemon, connect           # noqa: E402
from repro.rpc import new_channel                           # noqa: E402
from repro.units import nbody_system                        # noqa: E402

SCHEMA_VERSION = 1
DEFAULT_TOLERANCE = 0.25


def _median(samples):
    samples = sorted(samples)
    return samples[len(samples) // 2]


def measure(quick=False):
    """Run every metric; returns {name: metric-dict}."""
    rounds = 5 if quick else 15
    payload = np.arange(1 << 20 if quick else 1 << 21,
                        dtype=np.float64)
    metrics = {}

    def add(name, value, unit, higher_is_better, gate):
        metrics[name] = {
            "value": round(float(value), 4),
            "unit": unit,
            "higher_is_better": higher_is_better,
            "gate": gate,
        }

    # -- channel throughput: sockets vs shm (the tentpole claim) -------
    sockets = new_channel("sockets", ArrayEchoInterface)
    shm = new_channel("shm", ArrayEchoInterface)
    subproc = new_channel("subprocess", ArrayEchoInterface)
    try:
        sockets_gbit = echo_throughput_gbit_s(sockets, payload, rounds=rounds)
        shm_gbit = echo_throughput_gbit_s(shm, payload, rounds=rounds)
        subproc_gbit = echo_throughput_gbit_s(subproc, payload, rounds=rounds)
        latencies = []
        for _ in range(50 if quick else 200):
            t0 = time.perf_counter()
            sockets.call("checksum", ())
            latencies.append(time.perf_counter() - t0)
    finally:
        sockets.stop()
        shm.stop()
        subproc.stop()
    add("shm_vs_sockets_throughput_ratio", shm_gbit / sockets_gbit,
        "x", True, gate=True)
    add("sockets_loopback_gbit_s", sockets_gbit, "Gbit/s", True,
        gate=False)
    add("shm_gbit_s", shm_gbit, "Gbit/s", True, gate=False)
    add("subprocess_gbit_s", subproc_gbit, "Gbit/s", True, gate=False)
    add("sockets_call_latency_us", _median(latencies) * 1e6, "us",
        False, gate=False)

    # -- daemon loopback + negotiated compression + batching -----------
    compressible = np.zeros(1 << 17, dtype=np.float64)
    with IbisDaemon() as daemon, connect(daemon) as session:
        local = session.code(ArrayEchoInterface, resource="local")
        wan = session.code(ArrayEchoInterface, resource="DAS-4 (VU)")
        try:
            daemon_gbit = echo_throughput_gbit_s(local, payload, rounds=rounds)
            before = wan.bytes_sent
            wan.call("echo", compressible)
            wan_wire = wan.bytes_sent - before
            before = local.bytes_sent
            local.call("echo", compressible)
            local_wire = local.bytes_sent - before

            n_calls = 6
            batch_rounds = 20 if quick else 100
            local.call("echo", b"warm")
            t0 = time.perf_counter()
            for _ in range(batch_rounds):
                for _ in range(n_calls):
                    local.call("echo", b"x")
            sequential_s = (time.perf_counter() - t0) / batch_rounds
            t0 = time.perf_counter()
            for _ in range(batch_rounds):
                with local.batch():
                    requests = [
                        local.async_call("echo", b"x")
                        for _ in range(n_calls)
                    ]
                for request in requests:
                    request.result()
            batched_s = (time.perf_counter() - t0) / batch_rounds
        finally:
            local.stop()
            wan.stop()
    add("daemon_loopback_gbit_s", daemon_gbit, "Gbit/s", True,
        gate=False)
    add("compression_wire_shrink_ratio", local_wire / wan_wire, "x",
        True, gate=True)
    add("batched_vs_sequential_speedup", sequential_s / batched_s,
        "x", True, gate=True)

    # -- async overlap (sleep kernel: cost is pinned, so the ratio is
    # a pure measure of the concurrency machinery) ---------------------
    step_cost = 0.05 if quick else 0.1
    single = SleepCode(channel_type="sockets", cost_s=step_cost)
    t0 = time.perf_counter()
    single.evolve_model(1 | nbody_system.time)
    single_s = time.perf_counter() - t0
    single.stop()
    group = EvolveGroup([
        SleepCode(channel_type="sockets", cost_s=step_cost)
        for _ in range(2)
    ])
    t0 = time.perf_counter()
    group.evolve(1 | nbody_system.time)
    overlap_s = time.perf_counter() - t0
    group.stop()
    add("async_overlap_two_codes_ratio", overlap_s / single_s, "x",
        False, gate=True)

    # -- warm pool vs cold spawn (session tentpole): time from pilot
    # placement to the first evolve returning.  The ratio compares the
    # same host against itself, so it gates; the hard acceptance bound
    # (warm <= 0.5x cold) lives in bench_sessions.py and the
    # daemon-sessions CI lane.
    warm_s, cold_s = measure_warm_vs_cold(rounds=2 if quick else 3)
    add("warm_vs_cold_first_evolve_ratio", warm_s / cold_s, "x",
        False, gate=True)
    add("warm_first_evolve_s", warm_s, "s", False, gate=False)
    add("cold_first_evolve_s", cold_s, "s", False, gate=False)

    # -- DAG schedule vs barrier schedule (taskgraph tentpole): the
    # ratio is host-independent (same workers, same host, two
    # schedules), so it gates
    barrier_s, dag_s = measure_taskgraph_vs_barrier(
        rounds=2 if quick else 3
    )
    add("taskgraph_vs_barrier_ratio", dag_s / barrier_s, "x",
        False, gate=True)
    add("taskgraph_dag_step_s", dag_s, "s", False, gate=False)
    add("taskgraph_barrier_step_s", barrier_s, "s", False, gate=False)

    # -- ensemble cache payoff (campaign tentpole): identical
    # resubmission of a 24-member sweep must be served from the
    # content-addressed cache.  The raw warm/cold ratio is ~0.001 and
    # pure warm-path jitter at that scale, so the gated value is
    # clamped at the acceptance bound: it stays pinned at 0.1 while
    # the cache delivers >= 10x and only moves — tripping the gate —
    # when the cache stops paying off.
    cold_campaign_s, warm_campaign_s = measure_cold_vs_cached(
        8 if quick else 24
    )
    add("ensemble_cache_hit_ratio",
        max(warm_campaign_s / cold_campaign_s, CACHE_GATE_RATIO),
        "x", False, gate=True)
    add("ensemble_cold_campaign_s", cold_campaign_s, "s", False,
        gate=False)
    add("ensemble_warm_campaign_s", warm_campaign_s, "s", False,
        gate=False)

    # -- daemon relay data plane (relay tentpole): the zero-decode
    # splice must keep the daemon hop within 10% of direct sockets
    # (hard bound in bench_relay.py / the daemon-relay CI lane); the
    # ratios compare one host against itself, so they gate
    direct_gbit, relay_gbit, decoded_gbit = measure_relay_vs_direct(
        payload, rounds=rounds
    )
    add("daemon_relay_vs_direct_ratio", relay_gbit / direct_gbit,
        "x", True, gate=True)
    add("daemon_decoded_vs_direct_ratio", decoded_gbit / direct_gbit,
        "x", True, gate=False)
    add("daemon_relay_gbit_s", relay_gbit, "Gbit/s", True, gate=False)
    plain_s, autobatched_s = measure_autobatch_speedup(
        rounds=10 if quick else 30
    )
    add("autobatch_chatty_speedup", plain_s / autobatched_s, "x",
        True, gate=False)

    return metrics


# -- trajectory I/O ----------------------------------------------------------


def _bench_index(path):
    match = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
    return int(match.group(1)) if match else None


def latest_baseline():
    """The highest-numbered committed BENCH_*.json, or None."""
    candidates = [
        (index, path)
        for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
        if (index := _bench_index(path)) is not None
    ]
    if not candidates:
        return None
    return max(candidates)[1]


def compare(current, baseline_path, tolerance, quick=False):
    """Returns a list of regression strings (empty = pass).

    When this run's quick flag differs from the baseline's, the
    payload sizes and round counts differ systematically; the gate
    still runs (ratios are payload-robust) but with doubled tolerance
    so a mode mismatch cannot fabricate a regression.
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    if bool(baseline.get("quick")) != bool(quick):
        print(
            f"note: baseline {os.path.basename(baseline_path)} was "
            f"measured in {'quick' if baseline.get('quick') else 'full'} "
            f"mode, this run in {'quick' if quick else 'full'} mode; "
            "doubling the tolerance"
        )
        tolerance = 2 * tolerance
    regressions = []
    for name, metric in current.items():
        if not metric.get("gate"):
            continue
        base = baseline.get("metrics", {}).get(name)
        if base is None:
            continue            # new metric: nothing to regress against
        base_value, value = base["value"], metric["value"]
        if base_value == 0:
            continue
        if metric["higher_is_better"]:
            worse_by = (base_value - value) / base_value
        else:
            worse_by = (value - base_value) / base_value
        if worse_by > tolerance:
            regressions.append(
                f"{name}: {value} {metric['unit']} vs baseline "
                f"{base_value} ({worse_by:.0%} worse, tolerance "
                f"{tolerance:.0%})"
            )
    return regressions


def write_step_summary(metrics, baseline_path, regressions=None):
    """Append a markdown ratio table to ``$GITHUB_STEP_SUMMARY``.

    One row per metric — gated rows first — with the committed
    baseline value and the relative delta alongside, so a PR's bench
    run reads as a table in the Actions summary instead of a log
    scrape.  No-op outside GitHub Actions (env var unset).
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    baseline = {}
    baseline_name = "none"
    if baseline_path is not None:
        with open(baseline_path) as handle:
            baseline = json.load(handle).get("metrics", {})
        baseline_name = os.path.basename(baseline_path)
    lines = [
        "### bench-regression vs " + baseline_name,
        "",
        "| metric | value | baseline | delta | gated |",
        "|---|---:|---:|---:|:---:|",
    ]
    ordered = sorted(
        metrics.items(), key=lambda kv: (not kv[1]["gate"], kv[0])
    )
    for name, metric in ordered:
        base = baseline.get(name)
        if base is None or base["value"] == 0:
            base_cell = delta_cell = "—"
        else:
            base_cell = f"{base['value']} {metric['unit']}"
            rel = (metric["value"] - base["value"]) / base["value"]
            arrow = "" if abs(rel) < 1e-4 else \
                (" ⬆" if (rel > 0) == metric["higher_is_better"]
                 else " ⬇")
            delta_cell = f"{rel:+.1%}{arrow}"
        lines.append(
            f"| `{name}` | {metric['value']} {metric['unit']} | "
            f"{base_cell} | {delta_cell} | "
            f"{'yes' if metric['gate'] else ''} |"
        )
    if regressions:
        lines += ["", "**REGRESSIONS:**", ""]
        lines += [f"- {entry}" for entry in regressions]
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--write", metavar="PATH", default=None,
        help="write the measured metrics as a new baseline JSON",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the latest committed BENCH_*.json and "
             "exit nonzero on regression",
    )
    parser.add_argument(
        "--quick", action="store_true",
        default=bool(os.environ.get("BENCH_QUICK")),
        help="fewer rounds (CI smoke); BENCH_QUICK=1 implies it",
    )
    parser.add_argument(
        "--tolerance", type=float, default=float(
            os.environ.get("BENCH_TOLERANCE", DEFAULT_TOLERANCE)
        ),
        help="allowed relative regression for gated metrics",
    )
    args = parser.parse_args(argv)

    metrics = measure(quick=args.quick)
    width = max(len(name) for name in metrics)
    print(f"bench-regression metrics ({'quick' if args.quick else 'full'}):")
    for name, metric in sorted(metrics.items()):
        flag = "gated" if metric["gate"] else "info "
        print(f"  [{flag}] {name:<{width}} "
              f"{metric['value']:>10} {metric['unit']}")

    status = 0
    baseline = latest_baseline()
    regressions = []
    if args.check:
        if baseline is None:
            print("no committed BENCH_*.json baseline yet; "
                  "nothing to gate against")
        else:
            regressions = compare(
                metrics, baseline, args.tolerance, quick=args.quick
            )
            print(f"checked against {os.path.basename(baseline)}: ",
                  end="")
            if regressions:
                print(f"{len(regressions)} REGRESSION(S)")
                for line in regressions:
                    print(f"  {line}")
                status = 1
            else:
                print("ok")
    write_step_summary(metrics, baseline, regressions)

    if args.write:
        document = {
            "schema": SCHEMA_VERSION,
            "quick": args.quick,
            "metrics": metrics,
        }
        with open(args.write, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.write}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
