#!/usr/bin/env python3
"""DAG schedule vs barrier schedule on an unequal-cost coupled step.

The paper's coupled iteration is bounded by the slowest model at each
coupling point (Fig. 7): a barrier scheduler charges ``max()`` over the
codes at EVERY phase boundary — kick, drift, kick — so a fast code's
kicks wait for the slowest drift even though nothing couples them.
The :class:`~repro.rpc.taskgraph.TaskGraph` bridge joins per edge
instead: each code's ``kick1 → drift → kick2`` chain pipelines
independently, and the step costs the critical path ``max_i(kick_i +
drift_i + kick_i)``.

This bench makes the difference measurable with two
:class:`~repro.codes.testing.PhasedSleepCode` subprocess workers whose
drift/kick costs are deliberately unequal (a cheap-drift code with
expensive kicks next to an expensive-drift code with cheap kicks — the
shape of paper Fig. 7's SE/gravity vs hydro imbalance):

* barrier: ``max(kick) + max(drift) + max(kick)`` per step;
* DAG: ``max_i(kick_i + drift_i + kick_i)`` per step — the fast
  code's kicks ride the slack of the slow drift.

Acceptance: the DAG step completes in **< 0.8x** the barrier step's
wall clock.  (Sleep-cost workers overlap under the scheduler alone, so
the bound holds on any core count; the workers are real subprocess
children regardless, exercising the spawn/wire path.)

The second scenario is the fault-policy acceptance: a worker SIGKILLed
mid-evolve under ``FaultPolicy.RESTART`` is respawned through its
channel factory, its parameters and model clock are replayed, and the
graph resumes — the run FINISHES, with a different worker pid.

Standalone: ``python benchmarks/bench_taskgraph.py``.
"""

import os
import signal
import threading
import time

from repro.codes.testing import PhasedSleepCode
from repro.rpc import FaultPolicy, TaskGraph, wait_all
from repro.units import nbody_system

QUICK = bool(os.environ.get("BENCH_QUICK"))

#: (kick_s, drift_s) per code: one kick-heavy fast drifter, one
#: kick-light slow drifter — barrier pays every phase's max, the DAG
#: pays the slowest chain (ratio ~0.56 at either scale)
PHASE_COSTS = [(0.06, 0.015), (0.005, 0.14)] if QUICK else \
    [(0.25, 0.05), (0.02, 0.55)]
ROUNDS = 2 if QUICK else 3


def make_codes(channel_type="subprocess"):
    return [
        PhasedSleepCode(
            channel_type=channel_type, kick_s=kick_s, drift_s=drift_s
        )
        for kick_s, drift_s in PHASE_COSTS
    ]


def barrier_step(codes, t_end):
    """The pre-DAG schedule: three global joins per step."""
    wait_all([code.kick_async(0.5) for code in codes])
    wait_all([code.evolve_model.async_(t_end) for code in codes])
    wait_all([code.kick_async(0.5) for code in codes])


def dag_step(codes, t_end):
    """Per-code kick→drift→kick chains joined per edge.

    The codes are uncoupled here (each system's field depends only on
    itself), which is exactly the situation where the barrier's global
    joins are pure waste — the shape the bridge's source-drift edges
    reduce to for disjoint partner graphs.
    """
    graph = TaskGraph()
    for index, code in enumerate(codes):
        k1 = graph.add(
            f"kick1:{index}",
            lambda code=code: code.kick_async(0.5),
            code=code,
        )
        drift = graph.add(
            f"drift:{index}",
            lambda code=code: code.evolve_model.async_(t_end),
            after=[k1], code=code,
        )
        graph.add(
            f"kick2:{index}",
            lambda code=code: code.kick_async(0.5),
            after=[drift], code=code,
        )
    graph.run()


def _median(samples):
    samples = sorted(samples)
    return samples[len(samples) // 2]


def measure_taskgraph_vs_barrier(channel_type="subprocess",
                                 rounds=ROUNDS):
    """Returns ``(barrier_s, dag_s)`` median step wall clocks on one
    shared pair of workers (same spawn cost, same wire)."""
    codes = make_codes(channel_type)
    try:
        t_clock = iter(range(1, 1000))
        barrier_samples = []
        dag_samples = []
        # warmup one cheap call per worker so spawn/negotiation cost
        # never lands inside a measured step
        for code in codes:
            code.channel.call("get_model_time")
        for _ in range(rounds):
            t0 = time.perf_counter()
            barrier_step(codes, next(t_clock) | nbody_system.time)
            barrier_samples.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            dag_step(codes, next(t_clock) | nbody_system.time)
            dag_samples.append(time.perf_counter() - t0)
    finally:
        for code in codes:
            code.stop()
    return _median(barrier_samples), _median(dag_samples)


def run_restart_scenario(drift_s=None):
    """SIGKILL a subprocess worker mid-evolve under RESTART; returns
    ``(finished, old_pid, new_pid, elapsed_s, model_time)``."""
    drift_s = drift_s or (0.4 if QUICK else 0.8)
    code = PhasedSleepCode(
        channel_type="subprocess", kick_s=0.01, drift_s=drift_s
    )
    try:
        graph = TaskGraph()
        graph.add(
            "evolve",
            lambda: code.evolve_model.async_(1 | nbody_system.time),
            code=code,
        )
        old_pid = code.channel.pid
        killer = threading.Timer(
            drift_s * 0.3, lambda: os.kill(old_pid, signal.SIGKILL)
        )
        killer.start()
        t0 = time.perf_counter()
        graph.run(fault_policy=FaultPolicy.RESTART)
        elapsed = time.perf_counter() - t0
        killer.join()
        finished = graph["evolve"].state == "done"
        new_pid = code.channel.pid
        model_time = code.model_time.value_in(nbody_system.time)
    finally:
        code.stop()
    return finished, old_pid, new_pid, elapsed, model_time


# -- pytest surface ----------------------------------------------------------


def test_taskgraph_beats_barrier_schedule(benchmark, report):
    """Acceptance: DAG step < 0.8x barrier step on unequal costs."""
    barrier_s, dag_s = measure_taskgraph_vs_barrier()
    ratio = dag_s / barrier_s
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    benchmark.extra_info["barrier_step_s"] = barrier_s
    benchmark.extra_info["dag_step_s"] = dag_s
    benchmark.extra_info["taskgraph_vs_barrier_ratio"] = ratio
    report("TaskGraph vs barrier (2 unequal subprocess workers)", [
        f"phase costs (kick_s, drift_s): {PHASE_COSTS}",
        f"barrier schedule: {barrier_s * 1e3:8.1f} ms/step",
        f"DAG schedule:     {dag_s * 1e3:8.1f} ms/step",
        f"ratio:            {ratio:8.2f}x  (acceptance: < 0.8x)",
    ])
    assert ratio < 0.8


def test_restart_policy_survives_sigkill(report):
    """Acceptance: a SIGKILLed worker mid-evolve under RESTART is
    respawned and the run finishes with the new worker."""
    finished, old_pid, new_pid, elapsed, model_time = \
        run_restart_scenario()
    report("FaultPolicy.RESTART under SIGKILL (subprocess worker)", [
        f"worker pid {old_pid} killed mid-evolve, "
        f"respawned as {new_pid}",
        f"run finished: {finished} in {elapsed * 1e3:.0f} ms, "
        f"model_time = {model_time}",
    ])
    assert finished
    assert new_pid != old_pid
    assert model_time == 1.0


def main(argv=None):
    barrier_s, dag_s = measure_taskgraph_vs_barrier()
    ratio = dag_s / barrier_s
    print(f"taskgraph vs barrier (phase costs {PHASE_COSTS}):")
    print(f"  barrier schedule: {barrier_s * 1e3:8.1f} ms/step")
    print(f"  DAG schedule:     {dag_s * 1e3:8.1f} ms/step")
    print(f"  ratio:            {ratio:8.2f}x  (acceptance: < 0.8x)")
    finished, old_pid, new_pid, elapsed, model_time = \
        run_restart_scenario()
    print(f"RESTART: pid {old_pid} SIGKILLed mid-evolve -> "
          f"respawned {new_pid}, finished={finished}, "
          f"model_time={model_time}")
    ok = ratio < 0.8 and finished and new_pid != old_pid
    print("acceptance:", "PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
