"""E1 — Sec. 6.2 "Lab Conditions": the paper's central result.

Regenerates the four-scenario per-iteration table:

=========== ================================================= ======
scenario    placement                                         paper
=========== ================================================= ======
cpu         desktop quad-core (Fi + PhiGRAPE-CPU)             353 s
local-gpu   desktop + GeForce 9600GT (Octgrav + PhiGRAPE-GPU)  89 s
remote-gpu  Octgrav on the LGM Tesla C2050, 30 km away         84 s
jungle      4 sites (Fig. 12), every model on its best host   62.4 s
=========== ================================================= ======

Asserted shape: strict ordering, the ~4x GPU speed-up, the small
remote-GPU gain ("using the compute power of a GPU 30 kilometers away
is faster than using a GPU located inside our own machine"), and the
jungle being the fastest despite WAN hops.
"""

import pytest

from scenario_helpers import PAPER_SCENARIOS, build_scenario

SCENARIOS = ("cpu", "local-gpu", "remote-gpu", "jungle")


@pytest.fixture(scope="module")
def measured():
    out = {}
    for name in SCENARIOS:
        model, workload, placement = build_scenario(name)
        out[name] = model.iteration_time(workload, placement)
    return out


def test_e1_scenario_table(measured, report, benchmark):
    model, workload, placement = build_scenario("jungle")
    benchmark.pedantic(
        model.iteration_time, args=(workload, placement),
        rounds=5, iterations=1,
    )
    lines = [
        f"{'scenario':<12} {'modeled s/iter':>14} {'paper':>8} "
        f"{'ratio':>6}"
    ]
    for name in SCENARIOS:
        modeled = measured[name]["total_s"]
        paper = PAPER_SCENARIOS[name]
        lines.append(
            f"{name:<12} {modeled:>14.1f} {paper:>8.1f} "
            f"{modeled / paper:>6.2f}"
        )
    report("E1: lab scenarios (paper Sec. 6.2)", lines)

    values = {k: v["total_s"] for k, v in measured.items()}
    assert values["cpu"] > values["local-gpu"] > \
        values["remote-gpu"] > values["jungle"]


def test_e1_absolute_bands(measured):
    for name in SCENARIOS:
        assert measured[name]["total_s"] == pytest.approx(
            PAPER_SCENARIOS[name], rel=0.15
        ), f"scenario {name} drifted from the paper's value"


def test_e1_gpu_speedup(measured, report):
    speedup = measured["cpu"]["total_s"] / \
        measured["local-gpu"]["total_s"]
    report(
        "E1: GPU speed-up",
        [f"modeled {speedup:.2f}x vs paper {353 / 89:.2f}x"],
    )
    assert speedup == pytest.approx(353.0 / 89.0, rel=0.15)


def test_e1_remote_gpu_wins(measured):
    """The paper's striking observation: the remote Tesla beats the
    local GeForce even across 30 km of fibre."""
    assert measured["remote-gpu"]["total_s"] < \
        measured["local-gpu"]["total_s"]
    # ... but not by much: the prototype overhead is what's measured
    gain = 1 - measured["remote-gpu"]["total_s"] / \
        measured["local-gpu"]["total_s"]
    assert gain < 0.25


def test_e1_breakdown_attribution(measured, report):
    """Scenario 1 is coupling-bound (Fi dominates); scenario 2 is
    hydro-bound — the paper's rationale for moving Octgrav to a GPU."""
    cpu_bd = measured["cpu"]["breakdown"]
    gpu_bd = measured["local-gpu"]["breakdown"]
    report(
        "E1: time attribution",
        [
            f"cpu scenario: coupling={cpu_bd['coupling']['compute_s']:.0f}s "
            f"hydro={cpu_bd['hydro']['compute_s']:.0f}s "
            f"gravity={cpu_bd['gravity']['compute_s']:.0f}s",
            f"gpu scenario: coupling={gpu_bd['coupling']['compute_s']:.0f}s "
            f"hydro={gpu_bd['hydro']['compute_s']:.0f}s "
            f"gravity={gpu_bd['gravity']['compute_s']:.0f}s",
        ],
    )
    assert cpu_bd["coupling"]["compute_s"] > \
        cpu_bd["hydro"]["compute_s"]
    assert gpu_bd["hydro"]["compute_s"] > \
        gpu_bd["coupling"]["compute_s"]
