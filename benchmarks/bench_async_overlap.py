"""A3 — async-API overlap: sync vs overlapped evolve wall clock.

The paper's jungle scenario wins because its models evolve
*concurrently* on different resources.  This bench measures the
script-side machinery that enables it — ``evolve_model.async_`` futures
scheduled through :class:`~repro.codes.group.EvolveGroup` — against the
serialized shim, using workers whose per-step cost is a fixed sleep
(the stand-in for off-process compute: a real remote worker burns its
CPU on its own node, exactly like a sleeping worker thread here, with
the GIL out of the picture).

Acceptance shape: two codes with equal per-step cost must evolve
concurrently in < 1.6x the wall clock of a single code (the serialized
path costs ~2x).  A second test records the cost model's modeled
per-iteration time with and without drift overlap — the Sec. 6.2
accounting change (max over concurrent codes instead of sum).

The numpy-kernel variant (``--kernel numpy`` standalone, or the
``test_a3_numpy_kernel_*`` test) is the adversarial case: evolve is
GIL-holding numpy compute, so in-process worker threads serialize
(two workers sit near 2x one worker) while ``channel_type="subprocess"``
workers — each with their own interpreter and GIL — overlap near 1.0x.
Acceptance: subprocess pair < 1.4x single, threads baseline >= 1.7x in
the same run.  The subprocess bound needs >= 2 CPU cores (two
compute-heavy processes cannot overlap on one core, GIL or not); on a
single-core box the ratio is still reported but not asserted.
"""

import itertools
import os
import time

from repro.codes.group import EvolveGroup
from repro.codes.testing import NumpyKernelCode, SleepCode
from repro.jungle import (
    CostModel,
    IterationWorkload,
    Placement,
    make_lab_jungle,
)
from repro.units import nbody_system

QUICK = bool(os.environ.get("BENCH_QUICK"))
STEP_COST_S = 0.05 if QUICK else 0.2
ROUNDS = 3 if QUICK else 5
#: numpy kernel slices per evolve (~100ms quick / ~400ms full on the
#: dev container)
NUMPY_WORK_ITEMS = 500 if QUICK else 2000


def _cpu_count():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:      # non-Linux
        return os.cpu_count() or 1


def _make_codes(n):
    return [
        SleepCode(channel_type="sockets", cost_s=STEP_COST_S)
        for _ in range(n)
    ]


def test_a3_two_codes_overlap_vs_serial(benchmark, report):
    """Two equal-cost codes overlapped must land well under 2x one."""
    single = _make_codes(1)[0]
    pair = _make_codes(2)
    group = EvolveGroup(pair)
    clock = itertools.count(1)

    # reference: one code, one step
    t0 = time.perf_counter()
    single.evolve_model(next(clock) | nbody_system.time)
    single_s = time.perf_counter() - t0

    # serialized pair (the pre-async coupler)
    t0 = time.perf_counter()
    for code in pair:
        code.evolve_model(next(clock) | nbody_system.time)
    serial_s = time.perf_counter() - t0

    # overlapped pair, measured by pytest-benchmark
    benchmark.pedantic(
        lambda: group.evolve(next(clock) | nbody_system.time),
        rounds=ROUNDS, iterations=1, warmup_rounds=1,
    )
    overlap_s = benchmark.stats.stats.median

    benchmark.extra_info["single_code_s"] = single_s
    benchmark.extra_info["serialized_two_codes_s"] = serial_s
    benchmark.extra_info["overlapped_two_codes_s"] = overlap_s
    report("A3 async overlap (two equal-cost codes)", [
        f"one code:            {single_s * 1e3:8.1f} ms/step",
        f"two codes serialized: {serial_s * 1e3:7.1f} ms/step",
        f"two codes overlapped: {overlap_s * 1e3:7.1f} ms/step",
        f"overlap / single:     {overlap_s / single_s:7.2f}x "
        "(acceptance: < 1.6x)",
    ])

    # stop the workers BEFORE asserting, so a failed acceptance check
    # cannot leak live sockets workers into the rest of the bench run
    single.stop()
    group.stop()

    # the acceptance criterion: concurrent evolve beats the 2x of the
    # serialized path by a wide margin
    assert overlap_s < 1.6 * single_s
    assert serial_s > 1.6 * single_s    # sanity: serial really is ~2x


def test_a3_modeled_iteration_time_drops(report):
    """JungleRunner accounting: max() over concurrent codes, not sum()."""
    jungle = make_lab_jungle()
    desktop = jungle.host("desktop")
    workload = IterationWorkload()
    placement = Placement(coupler_host=desktop)
    for role in ("coupling", "gravity", "hydro", "se"):
        placement.assign(role, desktop, channel="direct")
    model = CostModel(jungle)
    seq = model.iteration_time(
        workload, placement, overlap_drift=False
    )
    par = model.iteration_time(
        workload, placement, overlap_drift=True
    )
    report("A3 modeled drift overlap (lab desktop)", [
        f"serialized drift: {seq['drift_s']:7.1f} s "
        f"(total {seq['total_s']:7.1f} s/iter)",
        f"overlapped drift: {par['drift_s']:7.1f} s "
        f"(total {par['total_s']:7.1f} s/iter)",
    ])
    assert par["drift_s"] < seq["drift_s"]
    assert par["total_s"] < seq["total_s"]


def _measure_numpy_overlap(clock, evolve_rounds=1):
    """One full numpy-kernel comparison: single subprocess worker,
    two GIL-sharing thread workers, two subprocess workers.  Returns
    ``(single_s, threads_s, subproc_s)`` medians over *evolve_rounds*.
    """
    def _timed(fn):
        samples = []
        for _ in range(evolve_rounds):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
        samples.sort()
        return samples[len(samples) // 2]

    single = NumpyKernelCode(
        channel_type="subprocess", work_items=NUMPY_WORK_ITEMS
    )
    single_s = _timed(
        lambda: single.evolve_model(next(clock) | nbody_system.time)
    )
    single.stop()

    threads = EvolveGroup([
        NumpyKernelCode(
            channel_type="sockets", work_items=NUMPY_WORK_ITEMS
        )
        for _ in range(2)
    ])
    threads_s = _timed(
        lambda: threads.evolve(next(clock) | nbody_system.time)
    )
    threads.stop()

    subproc = EvolveGroup([
        NumpyKernelCode(
            channel_type="subprocess", work_items=NUMPY_WORK_ITEMS
        )
        for _ in range(2)
    ])
    subproc_s = _timed(
        lambda: subproc.evolve(next(clock) | nbody_system.time)
    )
    subproc.stop()
    return single_s, threads_s, subproc_s


def test_a3_numpy_kernel_subprocess_lifts_gil_bound(report):
    """Compute-heavy workers: threads serialize on the GIL (~2x),
    subprocess workers overlap for real (~1x, needs >= 2 cores)."""
    cores = _cpu_count()
    single_s, threads_s, subproc_s = _measure_numpy_overlap(
        itertools.count(1), evolve_rounds=ROUNDS
    )
    threads_x = threads_s / single_s
    subproc_x = subproc_s / single_s
    report("A3 numpy-kernel overlap (GIL-holding compute)", [
        f"one subprocess worker:        {single_s * 1e3:8.1f} ms/step",
        f"two thread workers (sockets): {threads_s * 1e3:8.1f} ms/step"
        f"  ({threads_x:.2f}x, GIL-bound; acceptance: >= 1.7x)",
        f"two subprocess workers:       {subproc_s * 1e3:8.1f} ms/step"
        f"  ({subproc_x:.2f}x; acceptance: < 1.4x on >= 2 cores)",
        f"cpu cores available: {cores}" + (
            "" if cores >= 2 else
            "  (single core: compute cannot physically overlap; "
            "subprocess ratio reported, not asserted)"
        ),
    ])

    # in-process worker threads share the coupler's GIL: two
    # compute-heavy workers are no better than serialized, on any
    # number of cores
    assert threads_x >= 1.7
    if cores >= 2:
        # the tentpole claim: off-process workers overlap real compute
        assert subproc_x < 1.4


def main(argv=None):
    """Standalone run: ``python benchmarks/bench_async_overlap.py
    --kernel numpy`` prints the overlap table without pytest."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--kernel", choices=("sleep", "numpy"), default="numpy",
        help="worker cost model: fixed sleep or GIL-holding numpy",
    )
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help="evolve rounds per measurement (median is reported)",
    )
    args = parser.parse_args(argv)
    clock = itertools.count(1)

    if args.kernel == "numpy":
        cores = _cpu_count()
        single_s, threads_s, subproc_s = _measure_numpy_overlap(
            clock, evolve_rounds=args.rounds
        )
        print(f"numpy kernel, {NUMPY_WORK_ITEMS} slices/evolve, "
              f"{cores} cpu core(s)")
        print(f"  one subprocess worker:        "
              f"{single_s * 1e3:8.1f} ms/step")
        print(f"  two thread workers (sockets): "
              f"{threads_s * 1e3:8.1f} ms/step "
              f"({threads_s / single_s:.2f}x, GIL-bound)")
        print(f"  two subprocess workers:       "
              f"{subproc_s * 1e3:8.1f} ms/step "
              f"({subproc_s / single_s:.2f}x)")
        ok = threads_s / single_s >= 1.7 and (
            cores < 2 or subproc_s / single_s < 1.4
        )
        print("acceptance:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    single = SleepCode(channel_type="sockets", cost_s=STEP_COST_S)
    t0 = time.perf_counter()
    single.evolve_model(next(clock) | nbody_system.time)
    single_s = time.perf_counter() - t0
    single.stop()
    group = EvolveGroup(_make_codes(2))
    t0 = time.perf_counter()
    group.evolve(next(clock) | nbody_system.time)
    overlap_s = time.perf_counter() - t0
    group.stop()
    print(f"sleep kernel ({STEP_COST_S}s/step)")
    print(f"  one worker:            {single_s * 1e3:8.1f} ms/step")
    print(f"  two workers overlapped: {overlap_s * 1e3:7.1f} ms/step "
          f"({overlap_s / single_s:.2f}x)")
    return 0 if overlap_s < 1.6 * single_s else 1


if __name__ == "__main__":
    raise SystemExit(main())
