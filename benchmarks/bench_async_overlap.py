"""A3 — async-API overlap: sync vs overlapped evolve wall clock.

The paper's jungle scenario wins because its models evolve
*concurrently* on different resources.  This bench measures the
script-side machinery that enables it — ``evolve_model.async_`` futures
scheduled through :class:`~repro.codes.group.EvolveGroup` — against the
serialized shim, using workers whose per-step cost is a fixed sleep
(the stand-in for off-process compute: a real remote worker burns its
CPU on its own node, exactly like a sleeping worker thread here, with
the GIL out of the picture).

Acceptance shape: two codes with equal per-step cost must evolve
concurrently in < 1.6x the wall clock of a single code (the serialized
path costs ~2x).  A second test records the cost model's modeled
per-iteration time with and without drift overlap — the Sec. 6.2
accounting change (max over concurrent codes instead of sum).
"""

import itertools
import os
import time

from repro.codes.group import EvolveGroup
from repro.codes.testing import SleepCode
from repro.jungle import (
    CostModel,
    IterationWorkload,
    Placement,
    make_lab_jungle,
)
from repro.units import nbody_system

QUICK = bool(os.environ.get("BENCH_QUICK"))
STEP_COST_S = 0.05 if QUICK else 0.2
ROUNDS = 3 if QUICK else 5


def _make_codes(n):
    return [
        SleepCode(channel_type="sockets", cost_s=STEP_COST_S)
        for _ in range(n)
    ]


def test_a3_two_codes_overlap_vs_serial(benchmark, report):
    """Two equal-cost codes overlapped must land well under 2x one."""
    single = _make_codes(1)[0]
    pair = _make_codes(2)
    group = EvolveGroup(pair)
    clock = itertools.count(1)

    # reference: one code, one step
    t0 = time.perf_counter()
    single.evolve_model(next(clock) | nbody_system.time)
    single_s = time.perf_counter() - t0

    # serialized pair (the pre-async coupler)
    t0 = time.perf_counter()
    for code in pair:
        code.evolve_model(next(clock) | nbody_system.time)
    serial_s = time.perf_counter() - t0

    # overlapped pair, measured by pytest-benchmark
    benchmark.pedantic(
        lambda: group.evolve(next(clock) | nbody_system.time),
        rounds=ROUNDS, iterations=1, warmup_rounds=1,
    )
    overlap_s = benchmark.stats.stats.median

    benchmark.extra_info["single_code_s"] = single_s
    benchmark.extra_info["serialized_two_codes_s"] = serial_s
    benchmark.extra_info["overlapped_two_codes_s"] = overlap_s
    report("A3 async overlap (two equal-cost codes)", [
        f"one code:            {single_s * 1e3:8.1f} ms/step",
        f"two codes serialized: {serial_s * 1e3:7.1f} ms/step",
        f"two codes overlapped: {overlap_s * 1e3:7.1f} ms/step",
        f"overlap / single:     {overlap_s / single_s:7.2f}x "
        "(acceptance: < 1.6x)",
    ])

    # stop the workers BEFORE asserting, so a failed acceptance check
    # cannot leak live sockets workers into the rest of the bench run
    single.stop()
    group.stop()

    # the acceptance criterion: concurrent evolve beats the 2x of the
    # serialized path by a wide margin
    assert overlap_s < 1.6 * single_s
    assert serial_s > 1.6 * single_s    # sanity: serial really is ~2x


def test_a3_modeled_iteration_time_drops(report):
    """JungleRunner accounting: max() over concurrent codes, not sum()."""
    jungle = make_lab_jungle()
    desktop = jungle.host("desktop")
    workload = IterationWorkload()
    placement = Placement(coupler_host=desktop)
    for role in ("coupling", "gravity", "hydro", "se"):
        placement.assign(role, desktop, channel="direct")
    model = CostModel(jungle)
    seq = model.iteration_time(
        workload, placement, overlap_drift=False
    )
    par = model.iteration_time(
        workload, placement, overlap_drift=True
    )
    report("A3 modeled drift overlap (lab desktop)", [
        f"serialized drift: {seq['drift_s']:7.1f} s "
        f"(total {seq['total_s']:7.1f} s/iter)",
        f"overlapped drift: {par['drift_s']:7.1f} s "
        f"(total {par['total_s']:7.1f} s/iter)",
    ])
    assert par["drift_s"] < seq["drift_s"]
    assert par["total_s"] < seq["total_s"]
