"""E4 — Figs. 8/9: the SC11 transatlantic demonstration.

"We tested a worst-case scenario where the coupler was running on one
side of the Atlantic ocean, and all the models were running on the
other side."  The bench rebuilds the Fig. 9 machine/network
configuration, deploys the four models through four different
middlewares via IbisDeploy/PyGAT, verifies that every worker starts and
that every coupler->worker connection succeeds despite firewalls and
non-routed compute nodes, and reports the modeled per-iteration time of
the worst case.
"""

import pytest

from repro.distributed import (
    DistributedAmuse,
    JungleRunner,
    ResourceSpec,
)
from repro.ibis.gat import JobState
from repro.jungle import make_sc11_jungle


@pytest.fixture(scope="module")
def demo():
    jungle = make_sc11_jungle()
    damuse = DistributedAmuse(jungle, jungle.host("laptop"))
    damuse.add_resource(
        ResourceSpec("LGM", "LGM (LU)", "ssh", 1, needs_gpu=True)
    )
    damuse.add_resource(ResourceSpec("VU", "DAS-4 (VU)", "sge", 8))
    damuse.add_resource(ResourceSpec("UvA", "DAS-4 (UvA)", "sge", 1))
    damuse.add_resource(
        ResourceSpec("TUD", "DAS-4 (TUD)", "sge", 2, needs_gpu=True)
    )
    damuse.new_pilot("gravity", "LGM")        # PhiGRAPE, Tesla C2050
    damuse.new_pilot("hydro", "VU", node_count=8)   # Gadget
    damuse.new_pilot("se", "UvA")             # SSE
    damuse.new_pilot("coupling", "TUD", node_count=2)   # Octgrav
    started = damuse.wait_for_pilots()
    return jungle, damuse, started


def test_e4_all_models_started(demo, report):
    jungle, damuse, started = demo
    rows = damuse.deploy.job_table()
    report(
        "E4: SC11 deployment (Fig. 9 placement)",
        [f"{r['name']:<18} {r['site']:<14} {r['adaptor']:<12} "
         f"nodes={r['nodes']} {r['state']}" for r in rows],
    )
    assert started
    assert all(r["state"] == JobState.RUNNING for r in rows)


def test_e4_middleware_diversity(demo):
    """The models really go through different middleware adaptors."""
    jungle, damuse, _ = demo
    adaptors = {r["adaptor"] for r in damuse.deploy.job_table()}
    assert len(adaptors) >= 2
    assert "SshAdaptor" in adaptors


def test_e4_connectivity_despite_firewalls(demo, report):
    """Every worker is reachable although the laptop is firewalled and
    cluster nodes are non-routed — SmartSockets' job."""
    jungle, damuse, _ = demo
    counts = damuse.deploy.factory.strategy_counts
    report(
        "E4: SmartSockets connection strategies",
        [f"{k}: {v}" for k, v in sorted(counts.items())],
    )
    assert sum(counts.values()) >= len(damuse.pilots)
    assert counts["routed"] >= 1
    for pilot in damuse.pilots.values():
        assert getattr(pilot, "send_port", None) is not None


def test_e4_worst_case_iteration_time(demo, report, benchmark):
    jungle, damuse, _ = demo
    runner = JungleRunner(None, damuse)
    benchmark.pedantic(runner.run_iteration, rounds=5, iterations=1)
    per_iter = runner.modeled_elapsed_s / len(runner.iteration_costs)
    report(
        "E4: transatlantic worst case",
        [f"modeled {per_iter:.1f} s/iteration "
         "(lab jungle without the ocean: ~58-62 s)"],
    )
    # the Atlantic adds RPC latency but must not dominate: the paper's
    # demo ran live at SC11
    assert per_iter < 90.0


def test_e4_hub_overlay_shape(demo):
    """One hub per used resource + the root hub on the laptop; the
    laptop's links are one-way (it is firewalled)."""
    jungle, damuse, _ = demo
    overlay = damuse.deploy.factory.overlay
    assert "laptop" in overlay.hubs
    laptop_edges = [
        (a, b, kind) for a, b, kind in overlay.edges()
        if "laptop" in (a, b)
    ]
    assert laptop_edges
    assert all(kind == "one-way" for _, _, kind in laptop_edges)
