"""A4 — multi-kernel ablation (Sec. 4): same model, different kernels.

REAL wall-time measurements of the kernels this reproduction ships:
direct-summation N-body (PhiGRAPE's algorithm) vs Barnes-Hut tree
(Octgrav/Fi's algorithm) across N, plus the result-equivalence checks
behind the paper's "no influence in the result" claim.
"""

import numpy as np
import pytest

from repro.codes.kernels import Octree, direct_acceleration
from repro.codes.phigrape import PhiGRAPEInterface
from repro.codes.treecode import FiInterface, OctgravInterface
from repro.ic import new_plummer_model


def system(n, seed=0):
    p = new_plummer_model(n, rng=seed)
    return p.position.number, p.velocity.number, p.mass.number


@pytest.mark.parametrize("n", [256, 1024])
def test_a4_direct_kernel_cost(n, benchmark):
    pos, vel, mass = system(n)
    benchmark.pedantic(
        direct_acceleration, args=(pos, mass),
        kwargs={"eps2": 1e-4}, rounds=5, iterations=1,
    )


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_a4_tree_kernel_cost(n, benchmark):
    pos, vel, mass = system(n)

    def tree_eval():
        tree = Octree(pos, mass)
        return tree.accelerations(theta=0.6, eps2=1e-4)

    benchmark.pedantic(tree_eval, rounds=5, iterations=1)


def test_a4_tree_beats_direct_at_scale(report):
    """The tree's N log N must win over direct N^2 for large N — the
    reason the coupling model is a tree code."""
    import time

    lines = []
    crossover_seen = False
    for n in (256, 1024, 4096):
        pos, vel, mass = system(n)
        t0 = time.perf_counter()
        direct_acceleration(pos, mass, eps2=1e-4)
        t_direct = time.perf_counter() - t0
        t0 = time.perf_counter()
        Octree(pos, mass).accelerations(theta=0.6, eps2=1e-4)
        t_tree = time.perf_counter() - t0
        lines.append(
            f"N={n:<6} direct={t_direct * 1e3:8.1f} ms  "
            f"tree={t_tree * 1e3:8.1f} ms  "
            f"ratio={t_direct / t_tree:5.2f}"
        )
        if t_tree < t_direct:
            crossover_seen = True
    report("A4: direct vs tree wall time", lines)
    assert crossover_seen, "tree never beat direct summation"


def test_a4_kernels_same_physics(report):
    """PhiGRAPE cpu/gpu bit-identical; Octgrav vs Fi tree-tolerance."""
    pos, vel, mass = system(128, seed=3)
    trajectories = {}
    for kernel in ("cpu", "gpu"):
        code = PhiGRAPEInterface(kernel=kernel, eta=0.05)
        code.new_particle(
            mass, pos[:, 0], pos[:, 1], pos[:, 2],
            vel[:, 0], vel[:, 1], vel[:, 2],
        )
        code.ensure_state("RUN")
        code.evolve_model(0.1)
        trajectories[kernel] = code.get_position().copy()
    assert np.array_equal(trajectories["cpu"], trajectories["gpu"])

    fields = {}
    for cls in (OctgravInterface, FiInterface):
        code = cls(eps2=1e-3)
        code.new_particle(
            mass, pos[:, 0], pos[:, 1], pos[:, 2],
            vel[:, 0], vel[:, 1], vel[:, 2],
        )
        fields[cls.__name__] = code.get_gravity_at_point(
            1e-3, pos + 0.5
        )
    rel = np.linalg.norm(
        fields["OctgravInterface"] - fields["FiInterface"], axis=1
    ) / np.linalg.norm(fields["FiInterface"], axis=1)
    report(
        "A4: kernel equivalence",
        ["PhiGRAPE cpu vs gpu: bit-identical",
         f"Octgrav vs Fi field: median rel diff {np.median(rel):.2e} "
         "(different opening angles)"],
    )
    assert np.median(rel) < 5e-3
