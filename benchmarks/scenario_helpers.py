"""Scenario builders shared by the benchmark harness.

Every benchmark regenerates one table/figure of the paper (see
EXPERIMENTS.md).  Shape assertions live next to the measurements, so
``pytest benchmarks/ --benchmark-only`` both reports the reproduced
numbers and fails if the qualitative result drifts.
"""

from repro.jungle import (
    CostModel,
    IterationWorkload,
    Placement,
    make_desktop_jungle,
    make_lab_jungle,
)

#: the paper's Sec. 6.2 lab measurements (s/iteration)
PAPER_SCENARIOS = {
    "cpu": 353.0,
    "local-gpu": 89.0,
    "remote-gpu": 84.0,
    "jungle": 62.4,
}


def build_scenario(name, workload=None):
    """(cost_model, workload, placement) for one Sec. 6.2 scenario."""
    w = workload or IterationWorkload(n_stars=1000, n_gas=10000)
    if name == "cpu":
        j = make_desktop_jungle(with_gpu=False)
        p = Placement(coupler_host=j.host("desktop"))
        for role in ("coupling", "gravity", "hydro", "se"):
            p.assign(role, j.host("desktop"), channel="direct")
    elif name == "local-gpu":
        j = make_desktop_jungle(with_gpu=True)
        p = Placement(coupler_host=j.host("desktop"))
        for role in ("coupling", "gravity", "hydro", "se"):
            p.assign(role, j.host("desktop"), channel="direct")
    elif name == "remote-gpu":
        j = make_lab_jungle()
        p = Placement(coupler_host=j.host("desktop"))
        p.assign("coupling", j.host("LGM (LU)-node00"), channel="ibis")
        for role in ("gravity", "hydro", "se"):
            p.assign(role, j.host("desktop"), channel="direct")
    elif name == "jungle":
        j = make_lab_jungle()
        p = Placement(coupler_host=j.host("desktop"))
        p.assign("coupling", j.host("DAS-4 (TUD)-node00"), nodes=2,
                 channel="ibis")
        p.assign("gravity", j.host("LGM (LU)-node00"), channel="ibis")
        p.assign("hydro", j.host("DAS-4 (VU)-node00"), nodes=8,
                 channel="ibis")
        p.assign("se", j.host("DAS-4 (UvA)-node00"), channel="ibis")
    else:
        raise KeyError(name)
    return CostModel(j), w, p


